package platform

import (
	"errors"
	"fmt"
	"testing"

	"gillis/internal/simnet"
	"gillis/internal/trace"
	"gillis/internal/trace/tracetest"
)

// tracedSim runs driver with a query trace rooted in env and returns the
// trace after the simulation drains.
func tracedSim(t *testing.T, cfg Config, seed int64, driver func(p *Platform, proc *simnet.Proc, root *trace.Span)) (*trace.Trace, *Platform) {
	t.Helper()
	env := simnet.NewEnv()
	p := New(env, cfg, seed)
	tr := trace.New("query", env.Stamp)
	env.Go("driver", func(proc *simnet.Proc) {
		driver(p, proc, tr.Root())
		tr.Root().EndSpan()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return tr, p
}

func TestInvocationSpanTree(t *testing.T) {
	tr, p := tracedSim(t, fastCfg(), 1, func(p *Platform, proc *simnet.Proc, root *trace.Span) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(2e9)
			return Payload{Bytes: 500}, nil
		})
		if _, err := p.InvokeFromSpan(proc, "f", Payload{Bytes: 1000}, root); err != nil {
			t.Error(err)
		}
	})
	tracetest.CheckWellFormed(t, tr)
	tracetest.CheckBilledAttribution(t, tr)
	tracetest.CheckBilledTotal(t, tr, p.BilledMsTotal())

	invs := tracetest.ByKind(tr, trace.KindInvoke)
	if len(invs) != 1 {
		t.Fatalf("invoke spans = %d, want 1", len(invs))
	}
	inv := invs[0]
	if inv.Name != "invoke:f" || inv.Attr("cold") != "1" {
		t.Errorf("invoke span: name=%q cold=%q", inv.Name, inv.Attr("cold"))
	}
	spans := tr.Spans()
	var phases []trace.Kind
	for _, ci := range inv.Children {
		phases = append(phases, spans[ci].Kind)
	}
	want := []trace.Kind{trace.KindUpload, trace.KindDispatch, trace.KindColdStart, trace.KindExec, trace.KindDownload}
	if fmt.Sprint(phases) != fmt.Sprint(want) {
		t.Errorf("invocation phases = %v, want %v", phases, want)
	}
	if inv.BilledMs <= 0 || inv.BilledMs != inv.TotalBilledMs {
		t.Errorf("billing = %d/%d", inv.BilledMs, inv.TotalBilledMs)
	}
}

func TestWarmInvocationSkipsColdStartSpan(t *testing.T) {
	tr, _ := tracedSim(t, fastCfg(), 1, func(p *Platform, proc *simnet.Proc, root *trace.Span) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) { return Payload{}, nil })
		_ = p.Prewarm("f", 1)
		if _, err := p.InvokeFromSpan(proc, "f", Payload{}, root); err != nil {
			t.Error(err)
		}
	})
	if n := len(tracetest.ByKind(tr, trace.KindColdStart)); n != 0 {
		t.Errorf("warm invocation recorded %d cold-start spans", n)
	}
	if inv := tracetest.ByKind(tr, trace.KindInvoke)[0]; inv.Attr("cold") != "" {
		t.Error("warm invocation must not carry the cold attr")
	}
}

func TestNestedInvocationBillingAttribution(t *testing.T) {
	tr, p := tracedSim(t, fastCfg(), 2, func(p *Platform, proc *simnet.Proc, root *trace.Span) {
		_ = p.Register("leaf", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(1e9)
			return Payload{}, nil
		})
		_ = p.Register("mid", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(1e9)
			if _, err := ctx.Invoke("leaf", Payload{}); err != nil {
				return Payload{}, err
			}
			return Payload{}, nil
		})
		if _, err := p.InvokeFromSpan(proc, "mid", Payload{}, root); err != nil {
			t.Error(err)
		}
	})
	tracetest.CheckWellFormed(t, tr)
	tracetest.CheckBilledAttribution(t, tr)
	tracetest.CheckBilledTotal(t, tr, p.BilledMsTotal())
	invs := tracetest.ByKind(tr, trace.KindInvoke)
	if len(invs) != 2 {
		t.Fatalf("invoke spans = %d, want 2", len(invs))
	}
	mid, leaf := invs[0], invs[1]
	if leaf.Parent == mid.ID {
		t.Error("leaf invoke must hang under mid's exec span, not the invoke span itself")
	}
	if mid.TotalBilledMs != mid.BilledMs+leaf.TotalBilledMs {
		t.Errorf("nested billing: mid %d/%d, leaf %d", mid.BilledMs, mid.TotalBilledMs, leaf.TotalBilledMs)
	}
}

func TestFaultSpansCarryTypedKinds(t *testing.T) {
	cases := []struct {
		name   string
		faults FaultProfile
		flops  int64
		herr   error
		fault  string
		billed bool
	}{
		{name: "injected-failure", faults: FaultProfile{FailureProb: 1}, flops: 2e9, fault: "failure", billed: true},
		{name: "handler-error", herr: errors.New("boom"), flops: 2e9, fault: "failure", billed: true},
		{name: "timeout-kill", faults: FaultProfile{TimeoutMs: 50}, flops: 40e9, fault: "timeout", billed: true},
		{name: "eviction", faults: FaultProfile{EvictionProb: 1}, flops: 2e9, fault: "evicted", billed: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := fastCfg()
			cfg.Faults = tc.faults
			tr, p := tracedSim(t, cfg, 3, func(p *Platform, proc *simnet.Proc, root *trace.Span) {
				_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
					ctx.Compute(tc.flops)
					return Payload{}, tc.herr
				})
				if _, err := p.InvokeFromSpan(proc, "f", Payload{}, root); err == nil {
					t.Error("invocation should have failed")
				}
			})
			tracetest.CheckWellFormed(t, tr)
			if failed := tracetest.CheckFaultKinds(t, tr); failed != 1 {
				t.Fatalf("failed invocation spans = %d, want 1", failed)
			}
			inv := tracetest.ByKind(tr, trace.KindInvoke)[0]
			if inv.Fault != tc.fault {
				t.Errorf("fault = %q, want %q", inv.Fault, tc.fault)
			}
			if tc.billed && inv.BilledMs <= 0 {
				t.Errorf("failed invocation should still carry billing, got %d", inv.BilledMs)
			}
			if !tc.billed && inv.BilledMs != 0 {
				t.Errorf("evicted invocation must bill nothing, got %d", inv.BilledMs)
			}
			tracetest.CheckBilledTotal(t, tr, p.BilledMsTotal())
			if tc.fault == "timeout" {
				execs := tracetest.ByKind(tr, trace.KindExec)
				if len(execs) != 1 || execs[0].Attr("killed") != "1" {
					t.Error("timed-out invocation must mark its zombie exec span killed")
				}
			}
		})
	}
}

func TestUntracedInvocationRecordsNothing(t *testing.T) {
	// A nil parent span threads nil through the whole invocation: no spans,
	// no allocations, identical behaviour.
	runSim(t, fastCfg(), 4, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
			if ctx.Span() != nil {
				t.Error("untraced invocation leaked a span into its Ctx")
			}
			sub := ctx.Span().Child(trace.KindCompute, "x") // must be a nil no-op
			sub.EndSpan()
			return Payload{}, nil
		})
		if _, err := p.InvokeFrom(proc, "f", Payload{}); err != nil {
			t.Error(err)
		}
	})
}

func TestPlatformMetrics(t *testing.T) {
	cfg := fastCfg()
	cfg.Faults = FaultProfile{FailureProb: 0.5}
	var wantBilled int64
	var p2 *Platform
	runSim(t, cfg, 5, func(p *Platform, proc *simnet.Proc) {
		p2 = p
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(1e9)
			return Payload{}, nil
		})
		for i := 0; i < 20; i++ {
			res, err := p.InvokeFrom(proc, "f", Payload{})
			_ = err
			wantBilled += res.BilledMs
		}
	})
	reg := p2.Metrics()
	if got := reg.Counter("platform.invocations").Value(); got != 20 {
		t.Errorf("invocations counter = %d, want 20", got)
	}
	if got := reg.Counter("platform.billed_ms").Value(); got != wantBilled || got != p2.BilledMsTotal() {
		t.Errorf("billed_ms counter = %d, want %d (platform total %d)", got, wantBilled, p2.BilledMsTotal())
	}
	fails := reg.Counter("platform.faults.failure").Value()
	if fails != p2.Faulted() || fails == 0 {
		t.Errorf("failure counter = %d, platform faulted = %d", fails, p2.Faulted())
	}
	if reg.Histogram("platform.handler_ms").Count() != 20 {
		t.Error("handler histogram must observe every settled invocation")
	}

	// UseMetrics redirects recording into a shared registry.
	shared := trace.NewRegistry()
	runSim(t, fastCfg(), 6, func(p *Platform, proc *simnet.Proc) {
		p.UseMetrics(shared)
		_ = p.Register("g", func(ctx *Ctx, in Payload) (Payload, error) { return Payload{}, nil })
		_, _ = p.InvokeFrom(proc, "g", Payload{})
	})
	if shared.Counter("platform.invocations").Value() != 1 {
		t.Error("UseMetrics must route invocation metrics to the shared registry")
	}
}
