// Package profile implements Gillis's runtime-profiling phase (§IV-A):
// it executes representative operator configurations in a single serverless
// function to fit per-layer-type runtime regressions, and measures function
// communication round-trips to fit the bandwidth and the EMG invocation
// overhead distribution. The fitted artifacts feed the performance model
// (package perf) that guides both partitioning algorithms.
package profile

import (
	"fmt"
	"sort"

	"gillis/internal/nn"
	"gillis/internal/platform"
	"gillis/internal/simnet"
	"gillis/internal/stats"
)

// LayerSample is one profiled operator execution.
type LayerSample struct {
	Kind  nn.Kind
	FLOPs int64
	Bytes int64 // input + output + weight bytes touched
	Ms    float64
}

// layerProbe describes one operator configuration to profile.
type layerProbe struct {
	kind  nn.Kind
	flops int64
	bytes int64
}

// OpBytes estimates the bytes an operator touches for given input shapes:
// inputs + output + weights.
func OpBytes(op nn.Op, inShapes [][]int) (int64, error) {
	out, err := op.OutShape(inShapes...)
	if err != nil {
		return 0, err
	}
	total := int64(0)
	for _, s := range inShapes {
		n := int64(1)
		for _, d := range s {
			n *= int64(d)
		}
		total += n * 4
	}
	n := int64(1)
	for _, d := range out {
		n *= int64(d)
	}
	total += n * 4
	total += op.ParamCount() * 4
	return total, nil
}

// probeConfigs builds the sweep of operator configurations (§IV-A: "for
// each type of layer, we run it with various configurations").
func probeConfigs() ([]layerProbe, error) {
	var probes []layerProbe
	add := func(op nn.Op, inShape []int) error {
		b, err := OpBytes(op, [][]int{inShape})
		if err != nil {
			return fmt.Errorf("profile: probe %s: %w", op.Name(), err)
		}
		probes = append(probes, layerProbe{kind: op.Kind(), flops: op.FLOPs(inShape), bytes: b})
		return nil
	}
	// Convolutions across channel counts (including asymmetric in/out
	// ratios, which decorrelate FLOPs from bytes touched), kernels, and
	// resolutions.
	for _, c := range []int{16, 64, 128, 256, 512} {
		for _, ratio := range []int{1, 2, 4} {
			for _, hw := range []int{7, 14, 28, 56} {
				for _, k := range []int{1, 3, 5} {
					if err := add(nn.NewConv2D("p", c, c*ratio, k, 1, k/2), []int{c, hw, hw}); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if err := add(nn.NewConv2D("p", 3, 64, 7, 2, 3), []int{3, 224, 224}); err != nil {
		return nil, err
	}
	// Dense layers.
	for _, in := range []int{512, 2048, 4096, 25088} {
		for _, out := range []int{1000, 4096} {
			if err := add(nn.NewDense("p", in, out), []int{in}); err != nil {
				return nil, err
			}
		}
	}
	// LSTM layers: varying both hidden size and sequence length (FLOPs
	// scale with T·h² but weight bytes with h² alone, so sweeping T
	// decorrelates the regression features).
	for _, h := range []int{256, 512, 1024, 2048} {
		for _, steps := range []int{4, 16, 48} {
			if err := add(nn.NewLSTM("p", h, h), []int{steps, h}); err != nil {
				return nil, err
			}
		}
	}
	// Pooling, normalization, activations, residual adds, softmax, GAP.
	for _, c := range []int{64, 256, 512} {
		for _, hw := range []int{14, 56} {
			shape := []int{c, hw, hw}
			if err := add(nn.NewMaxPool2D("p", 2, 2, 0), shape); err != nil {
				return nil, err
			}
			if err := add(nn.NewAvgPool2D("p", 2, 2), shape); err != nil {
				return nil, err
			}
			if err := add(nn.NewBatchNorm("p", c), shape); err != nil {
				return nil, err
			}
			if err := add(nn.NewReLU("p"), shape); err != nil {
				return nil, err
			}
			if err := add(nn.NewGlobalAvgPool("p"), shape); err != nil {
				return nil, err
			}
			b, err := OpBytes(nn.NewAdd("p"), [][]int{shape, shape})
			if err != nil {
				return nil, err
			}
			probes = append(probes, layerProbe{kind: nn.KindAdd, flops: nn.NewAdd("p").FLOPs(shape, shape), bytes: b})
		}
	}
	for _, n := range []int{1000, 10000} {
		if err := add(nn.NewSoftmax("p"), []int{n}); err != nil {
			return nil, err
		}
	}
	if err := add(nn.NewFlatten("p"), []int{512, 7, 7}); err != nil {
		return nil, err
	}
	if err := add(nn.NewTakeLast("p"), []int{8, 2048}); err != nil {
		return nil, err
	}
	return probes, nil
}

// ProfileLayers executes the operator sweep on the platform (repeats runs
// per configuration to average noise) and returns the timing samples.
func ProfileLayers(cfg platform.Config, seed int64, repeats int) ([]LayerSample, error) {
	if repeats < 1 {
		repeats = 1
	}
	probes, err := probeConfigs()
	if err != nil {
		return nil, err
	}
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	err = p.Register("probe", func(ctx *platform.Ctx, payload platform.Payload) (platform.Payload, error) {
		pr, ok := payload.Data.(layerProbe)
		if !ok {
			return platform.Payload{}, fmt.Errorf("profile: bad probe payload %T", payload.Data)
		}
		ctx.ComputeOp(pr.flops, pr.bytes)
		return platform.Payload{}, nil
	})
	if err != nil {
		return nil, err
	}
	if err := p.Prewarm("probe", 1); err != nil {
		return nil, err
	}

	var samples []LayerSample
	var runErr error
	env.Go("profiler", func(proc *simnet.Proc) {
		for _, pr := range probes {
			for r := 0; r < repeats; r++ {
				res, err := p.InvokeFrom(proc, "probe", platform.Payload{Data: pr})
				if err != nil {
					runErr = err
					return
				}
				samples = append(samples, LayerSample{Kind: pr.kind, FLOPs: pr.flops, Bytes: pr.bytes, Ms: res.HandlerMs})
			}
		}
	})
	if err := env.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return samples, nil
}

// Features returns the regression feature vector of a (FLOPs, bytes) pair:
// [1, GFLOPs, MB].
func Features(flops, bytes int64) []float64 {
	return []float64{1, float64(flops) / 1e9, float64(bytes) / 1e6}
}

// FitLayerModels fits a per-kind linear model Ms ≈ w · Features. Runtime
// noise is multiplicative, so rows are weighted by 1/Ms: the fit minimizes
// relative error, keeping small-operator predictions as accurate as large
// ones.
func FitLayerModels(samples []LayerSample) (map[nn.Kind][]float64, error) {
	byKind := make(map[nn.Kind][]LayerSample)
	for _, s := range samples {
		byKind[s.Kind] = append(byKind[s.Kind], s)
	}
	out := make(map[nn.Kind][]float64, len(byKind))
	for kind, ss := range byKind {
		var x [][]float64
		var y []float64
		for _, s := range ss {
			weight := 1 / s.Ms
			if s.Ms < 1e-3 {
				weight = 1e3
			}
			f := Features(s.FLOPs, s.Bytes)
			row := make([]float64, len(f))
			for i, v := range f {
				row[i] = v * weight
			}
			x = append(x, row)
			y = append(y, s.Ms*weight)
		}
		w, err := stats.FitLinear(x, y)
		if err != nil {
			return nil, fmt.Errorf("profile: fit %s: %w", kind, err)
		}
		out[kind] = w
	}
	return out, nil
}

// FitQuality reports the goodness of one layer-kind regression.
type FitQuality struct {
	Kind nn.Kind
	// Samples is the number of profiled executions.
	Samples int
	// R2 is the coefficient of determination of the weighted fit.
	R2 float64
	// MeanRelErr is the mean relative prediction error over the samples.
	MeanRelErr float64
}

// FitQualityReport evaluates fitted models against the samples they were
// trained on — the sanity check a profiling run should end with.
func FitQualityReport(samples []LayerSample, fits map[nn.Kind][]float64) []FitQuality {
	byKind := make(map[nn.Kind][]LayerSample)
	for _, s := range samples {
		byKind[s.Kind] = append(byKind[s.Kind], s)
	}
	var out []FitQuality
	for kind, ss := range byKind {
		w, ok := fits[kind]
		if !ok {
			continue
		}
		var mean float64
		for _, s := range ss {
			mean += s.Ms
		}
		mean /= float64(len(ss))
		var ssRes, ssTot, relErr float64
		for _, s := range ss {
			pred := stats.Dot(w, Features(s.FLOPs, s.Bytes))
			ssRes += (s.Ms - pred) * (s.Ms - pred)
			ssTot += (s.Ms - mean) * (s.Ms - mean)
			if s.Ms > 0 {
				d := (pred - s.Ms) / s.Ms
				if d < 0 {
					d = -d
				}
				relErr += d
			}
		}
		q := FitQuality{Kind: kind, Samples: len(ss), MeanRelErr: relErr / float64(len(ss))}
		if ssTot > 0 {
			q.R2 = 1 - ssRes/ssTot
		} else {
			q.R2 = 1
		}
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// CommProfile holds the fitted function-communication model.
type CommProfile struct {
	// NetMBps is the measured payload bandwidth.
	NetMBps float64
	// Overhead is the fitted EMG invocation-overhead distribution (ms).
	Overhead stats.EMG
}

// ProfileComm measures round-trips against an idle sink function and fits
// bandwidth (from large vs small payloads) and the EMG overhead
// distribution (from repeated fixed-size transfers), exactly as §IV-A
// profiles "transferring data of varying sizes through REST APIs".
func ProfileComm(cfg platform.Config, seed int64, runs int) (CommProfile, error) {
	if runs < 16 {
		runs = 16
	}
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	if err := p.Register("sink", func(ctx *platform.Ctx, payload platform.Payload) (platform.Payload, error) {
		return platform.Payload{}, nil
	}); err != nil {
		return CommProfile{}, err
	}
	if err := p.Prewarm("sink", 1); err != nil {
		return CommProfile{}, err
	}

	const smallBytes, largeBytes = 100_000, 8_000_000
	var smallMs, largeMs []float64
	var overheadMs []float64
	var runErr error
	env.Go("comm-profiler", func(proc *simnet.Proc) {
		rt := func(bytes int64) (float64, error) {
			before := proc.Now()
			if _, err := p.InvokeFrom(proc, "sink", platform.Payload{Bytes: bytes}); err != nil {
				return 0, err
			}
			return float64(proc.Now()-before) / 1e6, nil
		}
		for i := 0; i < runs/2; i++ {
			ms, err := rt(smallBytes)
			if err != nil {
				runErr = err
				return
			}
			smallMs = append(smallMs, ms)
			ms, err = rt(largeBytes)
			if err != nil {
				runErr = err
				return
			}
			largeMs = append(largeMs, ms)
		}
		// Bandwidth from the latency slope between payload sizes.
		bw := float64(largeBytes-smallBytes) / 1e6 / ((stats.Mean(largeMs) - stats.Mean(smallMs)) / 1000)
		// Overhead samples: 1 MB round-trips minus the transfer component.
		const probeBytes = 1_000_000
		for i := 0; i < runs; i++ {
			ms, err := rt(probeBytes)
			if err != nil {
				runErr = err
				return
			}
			overheadMs = append(overheadMs, ms-probeBytes/1e6/bw*1000)
		}
	})
	if err := env.Run(); err != nil {
		return CommProfile{}, err
	}
	if runErr != nil {
		return CommProfile{}, runErr
	}
	bw := float64(largeBytes-smallBytes) / 1e6 / ((stats.Mean(largeMs) - stats.Mean(smallMs)) / 1000)
	emg, err := stats.FitEMG(overheadMs)
	if err != nil {
		return CommProfile{}, fmt.Errorf("profile: fit overhead EMG: %w", err)
	}
	return CommProfile{NetMBps: bw, Overhead: emg}, nil
}
