package profile

import (
	"math"
	"testing"

	"gillis/internal/nn"
	"gillis/internal/platform"
	"gillis/internal/stats"
)

func TestProbeConfigsCoverAllKinds(t *testing.T) {
	probes, err := probeConfigs()
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[nn.Kind]bool)
	for _, p := range probes {
		kinds[p.kind] = true
	}
	want := []nn.Kind{
		nn.KindConv, nn.KindBatchNorm, nn.KindReLU, nn.KindMaxPool,
		nn.KindAvgPool, nn.KindGlobalAvgPool, nn.KindDense, nn.KindAdd,
		nn.KindSoftmax, nn.KindLSTM, nn.KindFlatten, nn.KindTakeLast,
	}
	for _, k := range want {
		if !kinds[k] {
			t.Errorf("probe sweep missing kind %s", k)
		}
	}
}

func TestOpBytes(t *testing.T) {
	c := nn.NewConv2D("c", 1, 1, 1, 1, 0)
	b, err := OpBytes(c, [][]int{{1, 4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// in 16 + out 16 + weights 2 scalars = 34 floats = 136 bytes.
	if b != 136 {
		t.Fatalf("OpBytes %d, want 136", b)
	}
	if _, err := OpBytes(c, [][]int{{2, 4, 4}}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestProfileAndFitLayerModels(t *testing.T) {
	cfg := platform.AWSLambda()
	samples, err := ProfileLayers(cfg, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 100 {
		t.Fatalf("only %d samples", len(samples))
	}
	ms, err := FitLayerModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted conv model must recover the simulator's ground truth:
	// 1 GFLOP ≈ 1000/GFLOPS ms per GFLOP.
	w, ok := ms[nn.KindConv]
	if !ok {
		t.Fatal("no conv model")
	}
	wantSlope := 1000 / cfg.GFLOPS
	if math.Abs(w[1]-wantSlope)/wantSlope > 0.10 {
		t.Fatalf("conv GFLOP slope %.3f, want ~%.3f", w[1], wantSlope)
	}
	// Held-out configurations (not in the sweep) must predict within a few
	// percent — Fig. 15 reports single-digit prediction error. Coefficient
	// identification is not required: FLOPs and bytes are correlated in any
	// realistic sweep, so only predictions are checked.
	holdout := []struct {
		conv *nn.Conv2D
		in   []int
	}{
		{nn.NewConv2D("x", 96, 96, 3, 1, 1), []int{96, 20, 20}},
		{nn.NewConv2D("x", 48, 192, 1, 1, 0), []int{48, 40, 40}},
		{nn.NewConv2D("x", 320, 320, 3, 2, 1), []int{320, 14, 14}},
	}
	for _, h := range holdout {
		bytes, err := OpBytes(h.conv, [][]int{h.in})
		if err != nil {
			t.Fatal(err)
		}
		fl := h.conv.FLOPs(h.in)
		pred := stats.Dot(w, Features(fl, bytes))
		truth := float64(fl)/(cfg.GFLOPS*1e6) + float64(bytes)/(cfg.MemGBps*1e6) + cfg.OpOverheadMs
		if math.Abs(pred-truth)/truth > 0.08 {
			t.Fatalf("conv %v prediction %.3f ms vs truth %.3f ms", h.in, pred, truth)
		}
	}
}

func TestFitLayerModelsEmpty(t *testing.T) {
	ms, err := FitLayerModels(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatal("expected empty model map")
	}
}

func TestProfileComm(t *testing.T) {
	cfg := platform.AWSLambda()
	cp, err := ProfileComm(cfg, 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cp.NetMBps-cfg.NetMBps)/cfg.NetMBps > 0.05 {
		t.Fatalf("fitted bandwidth %.1f MB/s, want ~%.1f", cp.NetMBps, cfg.NetMBps)
	}
	truthMean := cfg.InvokeOverhead.Mean()
	if math.Abs(cp.Overhead.Mean()-truthMean)/truthMean > 0.10 {
		t.Fatalf("fitted overhead mean %.2f ms, want ~%.2f", cp.Overhead.Mean(), truthMean)
	}
	// Order statistics from the fit should track the truth within ~10%
	// (Fig. 15 reports ~6% average error for concurrent-delay prediction).
	for _, n := range []int{2, 8, 16} {
		fit := cp.Overhead.ExpectedMax(n)
		truth := cfg.InvokeOverhead.ExpectedMax(n)
		if math.Abs(fit-truth)/truth > 0.12 {
			t.Fatalf("ExpectedMax(%d): fit %.2f vs truth %.2f", n, fit, truth)
		}
	}
}

func TestProfileCommDeterministic(t *testing.T) {
	cfg := platform.KNIX()
	a, err := ProfileComm(cfg, 7, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProfileComm(cfg, 7, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.NetMBps != b.NetMBps || a.Overhead != b.Overhead {
		t.Fatal("profiling must be deterministic for a fixed seed")
	}
}

func TestFitQualityReport(t *testing.T) {
	cfg := platform.AWSLambda()
	samples, err := ProfileLayers(cfg, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	fits, err := FitLayerModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	report := FitQualityReport(samples, fits)
	if len(report) < 8 {
		t.Fatalf("report covers %d kinds", len(report))
	}
	// R² only means something for kinds profiled across a spread of
	// configurations; constant-cost kinds (Flatten, TakeLast) are judged by
	// relative error alone.
	needR2 := map[nn.Kind]bool{
		nn.KindConv: true, nn.KindDense: true, nn.KindLSTM: true,
		nn.KindMaxPool: true, nn.KindBatchNorm: true, nn.KindReLU: true,
	}
	for _, q := range report {
		if q.Samples < 2 {
			t.Errorf("%s: only %d samples", q.Kind, q.Samples)
		}
		if needR2[q.Kind] && q.R2 < 0.99 {
			t.Errorf("%s: R² %.4f too low for a near-linear cost law", q.Kind, q.R2)
		}
		if q.MeanRelErr > 0.05 {
			t.Errorf("%s: mean relative error %.3f too high", q.Kind, q.MeanRelErr)
		}
	}
}
