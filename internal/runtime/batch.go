// Cross-query batched serving: one fork-join pass carries a batch of
// queries through the plan's rounds. Per-round invocation overheads
// (request overhead, cold starts, per-op dispatch) are paid once per batch
// instead of once per query — the throughput lever the batch-aware planner
// optimizes — while all tensor math runs the batched kernels of
// internal/nn, which are bitwise identical to the per-query loop.
package runtime

import (
	"fmt"

	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
	"gillis/internal/trace"
)

// batchReq is the in-process payload body of a batched invocation. inputs
// is nil in ShapeOnly mode; size is always set so handlers scale their
// modeled compute even without tensors.
type batchReq struct {
	size   int
	inputs []*tensor.Tensor
}

// batchResp is a worker's batched response body (Real mode).
type batchResp struct {
	outs []*tensor.Tensor
}

// batchMasterResp is the master's batched response body.
type batchMasterResp struct {
	outputs []*tensor.Tensor
	groupMs []float64
	resil   Resilience
}

// BatchResult reports one served batch.
type BatchResult struct {
	// Outputs holds one inference result per query, in input order (nil in
	// ShapeOnly mode).
	Outputs []*tensor.Tensor
	// Size is the number of queries in the batch.
	Size int
	// LatencyMs is the batch latency: the master function's duration. Every
	// query in the batch observes it.
	LatencyMs float64
	// GroupMs traces each fork-join round's master-observed duration.
	GroupMs []float64
	// BilledMs is the total billed duration (master + workers) for the
	// whole batch; callers apportion it across queries.
	BilledMs int64
	// ColdStart reports whether the master cold-started.
	ColdStart bool
	// Resilience aggregates the batch's resilience telemetry.
	Resilience Resilience
}

// ServeBatch executes one batch of queries as a single fork-join pass. In
// Real mode inputs carries one tensor per query and size must equal
// len(inputs); in ShapeOnly mode inputs is nil and size alone scales the
// modeled compute and payloads. Real-mode outputs are bitwise identical to
// serving the inputs sequentially.
func (d *Deployment) ServeBatch(proc *simnet.Proc, inputs []*tensor.Tensor, size int) (BatchResult, error) {
	return d.serveBatch(proc, inputs, size, nil)
}

// ServeBatchTraced is ServeBatch with query-level tracing (see ServeTraced).
func (d *Deployment) ServeBatchTraced(proc *simnet.Proc, inputs []*tensor.Tensor, size int) (BatchResult, *trace.Trace, error) {
	tr := trace.New("batch", d.p.Env().Stamp)
	root := tr.Root()
	res, err := d.serveBatch(proc, inputs, size, root)
	if err != nil {
		root.Fail("", err.Error())
	} else if d.mode == Real {
		for e, out := range res.Outputs {
			root.SetAttr(fmt.Sprintf("output-digest-%d", e), fmt.Sprintf("%016x", tensorDigest(out)))
		}
	}
	root.EndSpan()
	return res, tr, err
}

func (d *Deployment) serveBatch(proc *simnet.Proc, inputs []*tensor.Tensor, size int, root *trace.Span) (BatchResult, error) {
	if d.mode == Real {
		if len(inputs) == 0 {
			return BatchResult{}, fmt.Errorf("runtime: Real mode requires input tensors")
		}
		if size != len(inputs) {
			return BatchResult{}, fmt.Errorf("runtime: batch size %d != %d inputs", size, len(inputs))
		}
	} else if size <= 0 {
		return BatchResult{}, fmt.Errorf("runtime: batch size %d", size)
	}
	payload := platform.Payload{
		Bytes: tensor.SizeBytes(d.units[0].InShape) * int64(size),
		Data:  &batchReq{size: size},
	}
	if d.mode == Real {
		payload.Bytes = 0
		for _, in := range inputs {
			payload.Bytes += in.Bytes()
		}
		payload.Data = &batchReq{size: size, inputs: inputs}
	}
	var lastErr error
	var extra int64
	clientRetries := 0
	for attempt := 0; attempt <= d.opts.retries; attempt++ {
		if attempt > 0 {
			clientRetries++
			root.Event("client-retry", "attempt", fmt.Sprint(attempt))
			proc.Sleep(msToDur(d.opts.backoff(attempt)))
		}
		res, err := d.p.InvokeFromSpan(proc, d.Master, payload, root)
		if err != nil {
			extra += platform.BilledMsOf(err)
			lastErr = err
			continue
		}
		mr, ok := res.Resp.Data.(*batchMasterResp)
		if !ok {
			return BatchResult{}, fmt.Errorf("runtime: master returned %T", res.Resp.Data)
		}
		out := BatchResult{
			Size:      size,
			LatencyMs: res.HandlerMs,
			BilledMs:  res.TotalBilledMs,
			ColdStart: res.ColdStart,
			GroupMs:   mr.groupMs,
		}
		out.Resilience = mr.resil
		out.Resilience.Retries += clientRetries
		out.Resilience.FaultsSurvived += clientRetries
		out.Resilience.ExtraBilledMs += extra
		if d.mode == Real {
			if len(mr.outputs) != size {
				return BatchResult{}, fmt.Errorf("runtime: master returned %d outputs for batch of %d", len(mr.outputs), size)
			}
			out.Outputs = mr.outputs
		}
		d.recordBatchMetrics(out)
		return out, nil
	}
	return BatchResult{}, lastErr
}

// recordBatchMetrics aggregates one served batch: size queries, one
// batched pass.
func (d *Deployment) recordBatchMetrics(out BatchResult) {
	reg := d.p.Metrics()
	reg.Counter("runtime.queries").Add(int64(out.Size))
	reg.Counter("runtime.batches").Inc()
	r := out.Resilience
	reg.Counter("runtime.retries").Add(int64(r.Retries))
	reg.Counter("runtime.hedges").Add(int64(r.Hedges))
	reg.Counter("runtime.hedge_wins").Add(int64(r.HedgesWon))
	reg.Counter("runtime.fallbacks").Add(int64(r.Fallbacks))
	reg.Counter("runtime.faults_survived").Add(int64(r.FaultsSurvived))
	reg.Counter("runtime.extra_billed_ms").Add(r.ExtraBilledMs)
	reg.Histogram("runtime.batch_latency_ms").Observe(out.LatencyMs)
	reg.Histogram("runtime.batch_billed_ms").Observe(float64(out.BilledMs))
}

// masterHandlerBatch orchestrates the fork-join rounds for one batch.
func (d *Deployment) masterHandlerBatch(ctx *platform.Ctx, br *batchReq) (platform.Payload, error) {
	var cur []*tensor.Tensor
	if d.mode == Real {
		cur = br.inputs
	}
	qs := &queryStats{}
	groupMs := make([]float64, 0, len(d.groups))
	for gi, gr := range d.groups {
		before := ctx.Proc().Now()
		gsp := ctx.Span().Childf(trace.KindGroup, "group%d", gi)
		gsp.SetAttr("batch", fmt.Sprint(br.size))
		next, err := d.runGroupBatch(ctx, gi, gr, cur, br.size, qs, gsp)
		if err != nil {
			gsp.Fail("", err.Error())
			gsp.EndSpan()
			return platform.Payload{}, err
		}
		gsp.EndSpan()
		groupMs = append(groupMs, float64(ctx.Proc().Now()-before)/1e6)
		cur = next
	}
	last := d.groups[len(d.groups)-1]
	return platform.Payload{
		Bytes: last.outBytes * int64(br.size),
		Data:  &batchMasterResp{outputs: cur, groupMs: groupMs, resil: qs.snapshot()},
	}, nil
}

// runGroupBatch executes one layer group for a whole batch from the
// master's perspective. Per-query tensor math is either batched through the
// batch-aware kernels (DimNone paths, channel partitions) or looped per
// element (spatial partitions) — both bitwise identical to sequential
// execution — while modeled compute and payload bytes scale linearly with
// the batch size.
func (d *Deployment) runGroupBatch(ctx *platform.Ctx, gi int, gr *groupRuntime, ins []*tensor.Tensor, size int, qs *queryStats, gsp *trace.Span) ([]*tensor.Tensor, error) {
	opt := gr.gp.Option

	// Whole group on the master: local batched execution.
	if opt.Dim == partition.DimNone && gr.gp.OnMaster {
		csp := gsp.Child(trace.KindCompute, "master-compute")
		d.computeScaledBatch(ctx, gr, 1.0, size)
		if d.mode == Real {
			restore := d.opts.kernelScope()
			restoreObs := observeOps(csp)
			outs, err := partition.ForwardChainBatch(gr.units, ins)
			restoreObs()
			restore()
			csp.EndSpan()
			return outs, err
		}
		csp.EndSpan()
		return nil, nil
	}

	// Whole group on a single worker: one remote round for the batch.
	if opt.Dim == partition.DimNone {
		req := platform.Payload{Bytes: gr.inBytes * int64(size), Data: &batchReq{size: size}}
		if d.mode == Real {
			req.Data = &batchReq{size: size, inputs: ins}
		}
		res, err := d.callWorker(ctx.Proc(), ctx, gi, 0, req, qs, gsp)
		if err != nil {
			if d.opts.fallback {
				return d.fallbackLocalBatch(ctx, gi, gr, ins, size, qs, gsp)
			}
			return nil, err
		}
		return d.tensorsOf(res.Resp, size)
	}

	// Parallel round: fork workers with batched part payloads, optionally
	// compute partition 0 locally, join and reassemble per query.
	firstWorker := 0
	if gr.gp.OnMaster {
		firstWorker = 1
	}
	promises := make([]*simnet.Promise[platform.InvokeResult], 0, opt.Parts-firstWorker)
	callSpans := make([]*trace.Span, 0, opt.Parts-firstWorker)
	for part := firstWorker; part < opt.Parts; part++ {
		req := platform.Payload{Bytes: gr.partIn[part] * int64(size), Data: &batchReq{size: size}}
		if d.mode == Real {
			slabs := make([]*tensor.Tensor, size)
			for e, in := range ins {
				slab, err := d.partInput(gr, part, in)
				if err != nil {
					abandonUnsettled(promises, callSpans)
					return nil, err
				}
				slabs[e] = slab
			}
			req.Data = &batchReq{size: size, inputs: slabs}
		}
		pr, csp := d.launchWorker(ctx, gi, part, req, qs, gsp)
		promises = append(promises, pr)
		callSpans = append(callSpans, csp)
	}
	fail := func(err error) ([]*tensor.Tensor, error) {
		abandonUnsettled(promises, callSpans)
		return nil, err
	}

	// outs[part][e] is partition part's output for query e.
	outs := make([][]*tensor.Tensor, opt.Parts)
	if gr.gp.OnMaster {
		csp := gsp.Child(trace.KindCompute, "master-part0")
		d.computeScaledBatch(ctx, gr, flopFrac(gr, 0), size)
		if d.mode == Real {
			restore := d.opts.kernelScope()
			restoreObs := observeOps(csp)
			part0, err := d.execPartBatch(gr, 0, ins)
			restoreObs()
			restore()
			if err != nil {
				csp.EndSpan()
				return fail(err)
			}
			outs[0] = part0
		}
		csp.EndSpan()
	}
	for i, pr := range promises {
		res, err := pr.Wait(ctx.Proc())
		if err != nil {
			return fail(err)
		}
		if d.mode == Real {
			ts, err := d.tensorsOf(res.Resp, size)
			if err != nil {
				return fail(err)
			}
			outs[firstWorker+i] = ts
		}
	}
	// Reassembly is memory-bandwidth work on the master, once per query.
	rsp := gsp.Child(trace.KindCompute, "reassemble")
	ctx.ComputeOp(0, gr.outBytes*int64(size))
	if d.mode != Real {
		rsp.EndSpan()
		return nil, nil
	}
	dim := 1 // spatial: concatenate rows
	if opt.Dim == partition.DimChannel {
		dim = 0
	}
	joined := make([]*tensor.Tensor, size)
	for e := 0; e < size; e++ {
		parts := make([]*tensor.Tensor, opt.Parts)
		for part := range parts {
			parts[part] = outs[part][e]
		}
		out, err := tensor.ConcatDim(dim, parts...)
		if err != nil {
			rsp.EndSpan()
			return nil, err
		}
		joined[e] = out
	}
	rsp.EndSpan()
	return joined, nil
}

// workerHandlerBatch computes one partition of one group for a whole batch.
func (d *Deployment) workerHandlerBatch(ctx *platform.Ctx, gi, part int, br *batchReq) (platform.Payload, error) {
	gr := d.groups[gi]
	if gr.gp.Option.Dim == partition.DimNone {
		d.computeScaledBatch(ctx, gr, 1.0, br.size)
		resp := platform.Payload{Bytes: gr.outBytes * int64(br.size)}
		if d.mode == Real {
			restore := d.opts.kernelScope()
			restoreObs := observeOps(ctx.Span())
			outs, err := partition.ForwardChainBatch(gr.units, br.inputs)
			restoreObs()
			restore()
			if err != nil {
				return platform.Payload{}, err
			}
			resp.Data = &batchResp{outs: outs}
		}
		return resp, nil
	}

	d.computeScaledBatch(ctx, gr, flopFrac(gr, part), br.size)
	resp := platform.Payload{Bytes: gr.partOut[part] * int64(br.size)}
	if d.mode == Real {
		restore := d.opts.kernelScope()
		restoreObs := observeOps(ctx.Span())
		outs, err := d.execPartFromSlabBatch(gr, part, br.inputs)
		restoreObs()
		restore()
		if err != nil {
			return platform.Payload{}, err
		}
		resp.Data = &batchResp{outs: outs}
	}
	return resp, nil
}

// computeScaledBatch is computeScaled with the partition's FLOPs and bytes
// scaled linearly by the batch size (per-op dispatch overheads are charged
// once — that is the batching win the perf model predicts).
func (d *Deployment) computeScaledBatch(ctx *platform.Ctx, gr *groupRuntime, frac float64, size int) {
	bf := float64(size)
	ctx.ComputeOp(int64(float64(gr.flops)*frac*bf/d.opts.speedup()), int64(float64(gr.opBytes)*frac*bf))
}

// execPartBatch runs one partition over every query's full group input
// (master side).
func (d *Deployment) execPartBatch(gr *groupRuntime, part int, ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
	slabs := make([]*tensor.Tensor, len(ins))
	for e, in := range ins {
		slab, err := d.partInput(gr, part, in)
		if err != nil {
			return nil, err
		}
		slabs[e] = slab
	}
	return d.execPartFromSlabBatch(gr, part, slabs)
}

// execPartFromSlabBatch runs one partition over the batch's input slabs.
// Channel partitions build their subgraph once and run the batched graph
// walk; spatial partitions loop ExecSpatialPart per query (identical math
// either way).
func (d *Deployment) execPartFromSlabBatch(gr *groupRuntime, part int, slabs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if gr.gp.Option.Dim == partition.DimChannel {
		cs := gr.channel[part]
		sub, err := partition.ChannelSubgraph(gr.units[0], cs.Channels.Lo, cs.Channels.Hi)
		if err != nil {
			return nil, err
		}
		return sub.ForwardBatch(slabs)
	}
	outs := make([]*tensor.Tensor, len(slabs))
	for e, slab := range slabs {
		out, err := partition.ExecSpatialPart(gr.units, gr.spatial[part], slab)
		if err != nil {
			return nil, err
		}
		outs[e] = out
	}
	return outs, nil
}

// fallbackLocalBatch is fallbackLocal for a batched DimNone round: one
// storage fetch of the group's weights, then local batched execution.
func (d *Deployment) fallbackLocalBatch(ctx *platform.Ctx, gi int, gr *groupRuntime, ins []*tensor.Tensor, size int, qs *queryStats, gsp *trace.Span) ([]*tensor.Tensor, error) {
	fsp := gsp.Child(trace.KindFallback, "fallback")
	if _, err := ctx.StorageGet(d.fallbackKey(gi)); err != nil {
		fsp.Fail("", err.Error())
		fsp.EndSpan()
		return nil, err
	}
	qs.fellBack()
	qs.survive()
	d.computeScaledBatch(ctx, gr, 1.0, size)
	if d.mode == Real {
		restore := d.opts.kernelScope()
		restoreObs := observeOps(fsp)
		outs, err := partition.ForwardChainBatch(gr.units, ins)
		restoreObs()
		restore()
		fsp.EndSpan()
		return outs, err
	}
	fsp.EndSpan()
	return nil, nil
}

// tensorsOf unwraps a batched worker response.
func (d *Deployment) tensorsOf(p platform.Payload, size int) ([]*tensor.Tensor, error) {
	if d.mode != Real {
		return nil, nil
	}
	br, ok := p.Data.(*batchResp)
	if !ok {
		return nil, fmt.Errorf("runtime: batched response payload %T, want batch", p.Data)
	}
	if len(br.outs) != size {
		return nil, fmt.Errorf("runtime: worker returned %d outputs for batch of %d", len(br.outs), size)
	}
	return br.outs, nil
}
