package runtime

import (
	"math/rand"
	"testing"

	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
)

// TestServeBatchRealMatchesSequential pins the batched fork-join contract:
// a batch of N through a mixed plan (channel, spatial+master, master-local
// groups) yields exactly the N outputs of sequential Serve calls, and the
// per-batch accounting is sane.
func TestServeBatchRealMatchesSequential(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	rng := rand.New(rand.NewSource(7))
	const batch = 4
	xs := make([]*tensor.Tensor, batch)
	want := make([]*tensor.Tensor, batch)
	for e := range xs {
		xs[e] = tensor.Rand(rng, 1, 3, 24, 24)
		out, err := partition.ForwardChain(units, xs[e])
		if err != nil {
			t.Fatal(err)
		}
		want[e] = out
	}
	runClient(t, platform.AWSLambda(), 1, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := Deploy(p, units, plan, Real)
		if err != nil {
			t.Error(err)
			return
		}
		if err := d.Prewarm(); err != nil {
			t.Error(err)
			return
		}
		res, err := d.ServeBatch(proc, xs, batch)
		if err != nil {
			t.Error(err)
			return
		}
		if res.Size != batch || len(res.Outputs) != batch {
			t.Errorf("batch result size %d outputs %d", res.Size, len(res.Outputs))
			return
		}
		for e := range res.Outputs {
			if !tensor.Equal(res.Outputs[e], want[e]) {
				t.Errorf("batched output %d must match monolithic execution bitwise", e)
			}
		}
		if res.LatencyMs <= 0 || res.BilledMs <= 0 {
			t.Errorf("bad accounting: %+v", res)
		}
		if res.ColdStart {
			t.Error("prewarmed master should warm-start")
		}
		if len(res.GroupMs) != len(plan.Groups) {
			t.Errorf("got %d group timings, want %d", len(res.GroupMs), len(plan.Groups))
		}
	})
}

// TestServeBatchShapeOnlyScalesWithSize pins the modeled-cost side: a
// ShapeOnly batch of 8 must cost more billed time than a single query but
// far less than 8 sequential queries' latency (overheads amortize), and a
// batch reduces per-query latency cost versus sequential serving.
func TestServeBatchShapeOnlyScalesWithSize(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	var single, batched float64
	runClient(t, platform.AWSLambda(), 1, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := Deploy(p, units, plan, ShapeOnly)
		if err != nil {
			t.Error(err)
			return
		}
		if err := d.Prewarm(); err != nil {
			t.Error(err)
			return
		}
		res1, err := d.ServeBatch(proc, nil, 1)
		if err != nil {
			t.Error(err)
			return
		}
		res8, err := d.ServeBatch(proc, nil, 8)
		if err != nil {
			t.Error(err)
			return
		}
		single, batched = res1.LatencyMs, res8.LatencyMs
	})
	if batched <= single {
		t.Fatalf("batch of 8 latency %.3f should exceed single %.3f", batched, single)
	}
	if batched >= 8*single {
		t.Fatalf("batch of 8 latency %.3f should amortize below 8x single %.3f", batched, single)
	}
}

// TestServeBatchValidation pins the argument contract.
func TestServeBatchValidation(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	runClient(t, platform.AWSLambda(), 1, func(p *platform.Platform, proc *simnet.Proc) {
		dReal, err := Deploy(p, units, plan, Real)
		if err != nil {
			t.Error(err)
			return
		}
		dShape, err := Deploy(p, units, plan, ShapeOnly)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := dReal.ServeBatch(proc, nil, 2); err == nil {
			t.Error("Real batch without inputs should fail")
		}
		x := tensor.Rand(rand.New(rand.NewSource(1)), 1, 3, 24, 24)
		if _, err := dReal.ServeBatch(proc, []*tensor.Tensor{x}, 2); err == nil {
			t.Error("size/inputs mismatch should fail")
		}
		if _, err := dShape.ServeBatch(proc, nil, 0); err == nil {
			t.Error("non-positive ShapeOnly size should fail")
		}
	})
}

// TestSwitcherServeBatchDelegates pins batched delegation to the active
// deployment.
func TestSwitcherServeBatchDelegates(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	rng := rand.New(rand.NewSource(11))
	xs := []*tensor.Tensor{
		tensor.Rand(rng, 1, 3, 24, 24),
		tensor.Rand(rng, 1, 3, 24, 24),
	}
	want := make([]*tensor.Tensor, len(xs))
	for e, x := range xs {
		out, err := partition.ForwardChain(units, x)
		if err != nil {
			t.Fatal(err)
		}
		want[e] = out
	}
	runClient(t, platform.AWSLambda(), 1, func(p *platform.Platform, proc *simnet.Proc) {
		dPlan, err := Deploy(p, units, plan, Real)
		if err != nil {
			t.Error(err)
			return
		}
		dDef, err := DeployDefault(p, units, Real)
		if err != nil {
			t.Error(err)
			return
		}
		sw, err := NewSwitcher(dPlan, dDef)
		if err != nil {
			t.Error(err)
			return
		}
		if err := sw.Switch(1); err != nil {
			t.Error(err)
			return
		}
		res, tr, err := sw.ServeBatchTraced(proc, xs, len(xs))
		if err != nil {
			t.Error(err)
			return
		}
		for e := range res.Outputs {
			if !tensor.Equal(res.Outputs[e], want[e]) {
				t.Errorf("switched batched output %d diverged", e)
			}
		}
		if tr == nil {
			t.Error("traced batch should return a trace")
		}
	})
}
