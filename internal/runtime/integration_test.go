package runtime

import (
	"math/rand"
	"testing"

	"gillis/internal/models"
	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
)

// An RNN stack split across functions runs as serial remote rounds (the
// Fig. 12 regime); outputs must still be exact.
func TestServeRNNSerialRoundsReal(t *testing.T) {
	g, err := models.RNNCustom(4, 8, 6, 12)
	if err != nil {
		t.Fatal(err)
	}
	g.Init(3)
	units, err := partition.Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	// Two LSTM layers on the master, two on a worker, head on another
	// worker: three serial rounds.
	plan := &partition.Plan{Model: "rnn4", Groups: []partition.GroupPlan{
		{First: 0, Last: 1, Option: partition.Option{Dim: partition.DimNone, Parts: 1}, OnMaster: true},
		{First: 2, Last: 3, Option: partition.Option{Dim: partition.DimNone, Parts: 1}},
		{First: 4, Last: len(units) - 1, Option: partition.Option{Dim: partition.DimNone, Parts: 1}},
	}}
	if err := plan.Validate(units); err != nil {
		t.Fatal(err)
	}
	x := tensor.Rand(rand.New(rand.NewSource(5)), 1, 6, 8)
	want, err := partition.ForwardChain(units, x)
	if err != nil {
		t.Fatal(err)
	}
	runClient(t, platform.AWSLambda(), 21, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := Deploy(p, units, plan, Real)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := d.Serve(proc, x)
		if err != nil {
			t.Error(err)
			return
		}
		if !tensor.Equal(res.Output, want) {
			t.Error("serial-round output mismatch")
		}
	})
}

// Concurrent clients against one Real deployment: every query must return
// the correct tensor even while invocations interleave in the simulator.
func TestConcurrentClientsReal(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	const clients = 6
	inputs := make([]*tensor.Tensor, clients)
	wants := make([]*tensor.Tensor, clients)
	for i := range inputs {
		inputs[i] = tensor.Rand(rand.New(rand.NewSource(int64(100+i))), 1, 3, 24, 24)
		w, err := partition.ForwardChain(units, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}
	env := simnet.NewEnv()
	p := platform.New(env, platform.KNIX(), 9)
	d, err := Deploy(p, units, plan, Real)
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, clients)
	oks := make([]bool, clients)
	for i := 0; i < clients; i++ {
		i := i
		env.Go("client", func(proc *simnet.Proc) {
			res, err := d.Serve(proc, inputs[i])
			if err != nil {
				errs[i] = err
				return
			}
			oks[i] = tensor.Equal(res.Output, wants[i])
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !oks[i] {
			t.Fatalf("client %d: wrong output under concurrency", i)
		}
	}
}

// Serving Gillis and Default side by side in the same simulation must give
// identical answers (they share weights).
func TestGillisMatchesDefaultSideBySide(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	x := tensor.Rand(rand.New(rand.NewSource(17)), 1, 3, 24, 24)
	runClient(t, platform.AWSLambda(), 23, func(p *platform.Platform, proc *simnet.Proc) {
		dg, err := Deploy(p, units, plan, Real)
		if err != nil {
			t.Error(err)
			return
		}
		dd, err := DeployDefault(p, units, Real)
		if err != nil {
			t.Error(err)
			return
		}
		rg, err := dg.Serve(proc, x)
		if err != nil {
			t.Error(err)
			return
		}
		rd, err := dd.Serve(proc, x)
		if err != nil {
			t.Error(err)
			return
		}
		if !tensor.Equal(rg.Output, rd.Output) {
			t.Error("gillis and default disagree")
		}
	})
}

// Failure injection: a worker that returns a malformed payload must surface
// an error to the client, not a hang or a panic.
func TestWorkerBadPayloadSurfacesError(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	env := simnet.NewEnv()
	p := platform.New(env, platform.AWSLambda(), 31)
	d, err := Deploy(p, units, plan, Real)
	if err != nil {
		t.Fatal(err)
	}
	var serveErr error
	env.Go("client", func(proc *simnet.Proc) {
		// Bypass Serve: call the master with a non-tensor payload.
		_, serveErr = p.InvokeFrom(proc, d.Master, platform.Payload{Bytes: 10, Data: "garbage"})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if serveErr == nil {
		t.Fatal("expected error for malformed payload")
	}
}

func TestPipelineSingleChunkSmallModel(t *testing.T) {
	units := tinyCNN(t)
	runClient(t, platform.AWSLambda(), 37, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := DeployPipeline(p, units, ShapeOnly)
		if err != nil {
			t.Error(err)
			return
		}
		if d.Chunks() != 1 {
			t.Errorf("tiny model should fit one chunk, got %d", d.Chunks())
		}
	})
}

func TestGroupTraceSumsToLatency(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	runClient(t, platform.AWSLambda(), 41, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := Deploy(p, units, plan, ShapeOnly)
		if err != nil {
			t.Error(err)
			return
		}
		if err := d.Prewarm(); err != nil {
			t.Error(err)
			return
		}
		res, err := d.Serve(proc, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if len(res.GroupMs) != len(plan.Groups) {
			t.Errorf("trace has %d groups, want %d", len(res.GroupMs), len(plan.Groups))
			return
		}
		var sum float64
		for _, g := range res.GroupMs {
			if g < 0 {
				t.Errorf("negative group time %v", g)
			}
			sum += g
		}
		if diff := res.LatencyMs - sum; diff < -0.5 || diff > 0.5 {
			t.Errorf("group times sum to %.2f, latency %.2f", sum, res.LatencyMs)
		}
	})
}
