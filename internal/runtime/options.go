package runtime

import "gillis/internal/par"

// deployOpts collects optional deployment configuration shared by the
// fork-join and pipeline deployments.
type deployOpts struct {
	// parallelism is the modeled vCPU count per function instance;
	// 0 means "unspecified": kernels inherit the process-wide default and
	// simulated compute time is not rescaled.
	parallelism int

	// Resilience options (see resilience.go). All zero values mean
	// "naive": the original fail-on-first-error fork-join behavior.
	deadlineMs float64 // per-attempt worker deadline; 0 = none
	retries    int     // retry budget per worker call (and per query)
	backoffMs  float64 // initial retry backoff, doubled per attempt
	hedgePctl  float64 // hedge past this observed latency percentile; 0 = off
	fallback   bool    // master-local fallback for failed DimNone groups
}

// resilient reports whether any resilience option deviates from the naive
// fork-join path.
func (o deployOpts) resilient() bool {
	return o.deadlineMs > 0 || o.retries > 0 || o.hedgePctl > 0 || o.fallback
}

// backoff returns the sleep before retry attempt a (a >= 1), doubling per
// attempt from the configured initial backoff.
func (o deployOpts) backoff(a int) float64 {
	if o.backoffMs <= 0 || a <= 0 {
		return 0
	}
	return o.backoffMs * float64(int64(1)<<uint(a-1))
}

// WithDeadline bounds every worker invocation attempt to ms milliseconds of
// master-observed latency. An attempt that misses the deadline is abandoned
// (its billing still accrues and is reported as ExtraBilledMs) and counts as
// a failure for the retry budget.
func WithDeadline(ms float64) DeployOption {
	return func(o *deployOpts) {
		if ms > 0 {
			o.deadlineMs = ms
		}
	}
}

// WithRetries grants every worker call (and the client's master invocation)
// a budget of n retries with exponential backoff starting at initialBackoffMs
// and doubling per attempt. Retried work is recomputed from the same inputs,
// so Real-mode outputs stay bitwise identical to the fault-free run.
func WithRetries(n int, initialBackoffMs float64) DeployOption {
	return func(o *deployOpts) {
		if n > 0 {
			o.retries = n
			o.backoffMs = initialBackoffMs
		}
	}
}

// WithHedging launches a backup invocation for a worker whose attempt
// exceeds the pctl-th percentile of that group's observed latencies
// (first response wins; the loser's billing is reported as ExtraBilledMs).
// Hedging activates only after a group has accumulated enough latency
// samples (see minHedgeSamples).
func WithHedging(pctl float64) DeployOption {
	return func(o *deployOpts) {
		if pctl > 0 && pctl < 100 {
			o.hedgePctl = pctl
		}
	}
}

// WithMasterFallback enables graceful degradation for DimNone groups served
// by a remote worker: if the worker call fails past the retry budget, the
// master fetches the group's weights from object storage and executes the
// group locally instead of failing the query.
func WithMasterFallback() DeployOption {
	return func(o *deployOpts) { o.fallback = true }
}

// DeployOption configures a deployment.
type DeployOption func(*deployOpts)

// WithParallelism models function instances with n vCPUs (e.g. a 1769 MB
// Lambda has 1, a 10 GB Lambda has 6). It has two effects, one per
// execution mode:
//
//   - Real-mode kernels execute with kernel parallelism exactly n, so a
//     1-vCPU deployment measures single-core forwards and an n-vCPU one
//     measures multi-core forwards. Outputs are bitwise identical either
//     way (see package par).
//   - Simulated compute time (both modes) is divided by an Amdahl speedup
//     with parallel fraction 0.9, approximating how much of an operator's
//     FLOP time multi-core execution actually recovers.
func WithParallelism(n int) DeployOption {
	return func(o *deployOpts) {
		if n > 0 {
			o.parallelism = n
		}
	}
}

// parallelFraction is the Amdahl parallel fraction of kernel work used to
// scale simulated compute time: im2col, GEMM and gate matmuls parallelize,
// while padding, reassembly and dispatch do not.
const parallelFraction = 0.9

// speedup returns the modeled compute speedup of a function instance with
// the options' vCPU count (1.0 when unspecified).
func (o deployOpts) speedup() float64 {
	if o.parallelism <= 1 {
		return 1
	}
	n := float64(o.parallelism)
	return 1 / ((1 - parallelFraction) + parallelFraction/n)
}

// kernelScope installs the deployment's kernel parallelism for the duration
// of a Real-mode forward and returns the restore function. The underlying
// knob is process-wide (see par.SetParallelism); within one simulation Env
// at most one process executes at a time, so scopes never overlap there,
// and overlap across concurrently running simulations only perturbs
// scheduling, never results.
func (o deployOpts) kernelScope() (restore func()) {
	if o.parallelism <= 0 {
		return func() {}
	}
	return par.SetParallelism(o.parallelism)
}
