package runtime

import "gillis/internal/par"

// deployOpts collects optional deployment configuration shared by the
// fork-join and pipeline deployments.
type deployOpts struct {
	// parallelism is the modeled vCPU count per function instance;
	// 0 means "unspecified": kernels inherit the process-wide default and
	// simulated compute time is not rescaled.
	parallelism int
}

// DeployOption configures a deployment.
type DeployOption func(*deployOpts)

// WithParallelism models function instances with n vCPUs (e.g. a 1769 MB
// Lambda has 1, a 10 GB Lambda has 6). It has two effects, one per
// execution mode:
//
//   - Real-mode kernels execute with kernel parallelism exactly n, so a
//     1-vCPU deployment measures single-core forwards and an n-vCPU one
//     measures multi-core forwards. Outputs are bitwise identical either
//     way (see package par).
//   - Simulated compute time (both modes) is divided by an Amdahl speedup
//     with parallel fraction 0.9, approximating how much of an operator's
//     FLOP time multi-core execution actually recovers.
func WithParallelism(n int) DeployOption {
	return func(o *deployOpts) {
		if n > 0 {
			o.parallelism = n
		}
	}
}

// parallelFraction is the Amdahl parallel fraction of kernel work used to
// scale simulated compute time: im2col, GEMM and gate matmuls parallelize,
// while padding, reassembly and dispatch do not.
const parallelFraction = 0.9

// speedup returns the modeled compute speedup of a function instance with
// the options' vCPU count (1.0 when unspecified).
func (o deployOpts) speedup() float64 {
	if o.parallelism <= 1 {
		return 1
	}
	n := float64(o.parallelism)
	return 1 / ((1 - parallelFraction) + parallelFraction/n)
}

// kernelScope installs the deployment's kernel parallelism for the duration
// of a Real-mode forward and returns the restore function. The underlying
// knob is process-wide (see par.SetParallelism); within one simulation Env
// at most one process executes at a time, so scopes never overlap there,
// and overlap across concurrently running simulations only perturbs
// scheduling, never results.
func (o deployOpts) kernelScope() (restore func()) {
	if o.parallelism <= 0 {
		return func() {}
	}
	return par.SetParallelism(o.parallelism)
}
