package runtime

import (
	"bytes"
	"fmt"
	"sort"

	"gillis/internal/graph"
	"gillis/internal/modelio"
	"gillis/internal/partition"
)

// Bundle is one deployable function package: the weight shard a function
// hosts, serialized in the ONNX-lite format (§III-A: "the model partitions
// are packaged into functions and deployed on serverless platforms").
type Bundle struct {
	// Function is the logical function name ("master", "g<i>-p<j>").
	Function string
	// Group and Part locate the shard in the plan (-1/-1 for the master).
	Group, Part int
	// Archive is the serialized shard.
	Archive []byte
}

// Package materializes the per-function weight shards of a plan: the master
// bundle holds every group placed on it, and each worker bundle holds
// exactly its partition's weights (full group weights for spatial
// partitions, the sliced channels for channel partitions). All units must
// be initialized.
func Package(units []*partition.Unit, plan *partition.Plan) ([]Bundle, error) {
	if err := plan.Validate(units); err != nil {
		return nil, err
	}
	for _, u := range units {
		if !u.Sub.Initialized() {
			return nil, fmt.Errorf("runtime: packaging requires initialized weights (unit %d)", u.Index)
		}
	}
	var bundles []Bundle

	// Master bundles: one shard per group the master participates in
	// (partition 0 of parallel groups, the whole graph of local groups).
	for gi, gp := range plan.Groups {
		if !gp.OnMaster {
			continue
		}
		shard, err := shardGraph(units, gp, 0)
		if err != nil {
			return nil, err
		}
		data, err := archive(shard)
		if err != nil {
			return nil, err
		}
		bundles = append(bundles, Bundle{
			Function: fmt.Sprintf("master-g%d", gi),
			Group:    gi, Part: 0,
			Archive: data,
		})
	}

	for gi, gp := range plan.Groups {
		firstWorker := 0
		if gp.OnMaster {
			firstWorker = 1
		}
		if gp.Option.Dim == partition.DimNone && gp.OnMaster {
			continue
		}
		for part := firstWorker; part < gp.Option.Parts; part++ {
			shard, err := shardGraph(units, gp, part)
			if err != nil {
				return nil, err
			}
			data, err := archive(shard)
			if err != nil {
				return nil, err
			}
			bundles = append(bundles, Bundle{
				Function: fmt.Sprintf("g%d-p%d", gi, part),
				Group:    gi, Part: part,
				Archive: data,
			})
		}
	}
	sort.Slice(bundles, func(i, j int) bool { return bundles[i].Function < bundles[j].Function })
	return bundles, nil
}

// shardGraph builds the weight graph one worker partition hosts.
func shardGraph(units []*partition.Unit, gp partition.GroupPlan, part int) (*graph.Graph, error) {
	if gp.Option.Dim == partition.DimChannel {
		u := units[gp.First]
		outC := u.OutChannels()
		lo, hi := part*outC/gp.Option.Parts, (part+1)*outC/gp.Option.Parts
		return partition.ChannelSubgraph(u, lo, hi)
	}
	// Spatial partitions and whole-group workers replicate the group's
	// weights.
	g := graph.New(fmt.Sprintf("shard-g%d-p%d", gp.First, part), units[gp.First].InShape)
	for _, u := range units[gp.First : gp.Last+1] {
		if err := appendOps(g, u.Sub); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// appendOps concatenates src's ops onto dst, rebasing input references.
func appendOps(dst *graph.Graph, src *graph.Graph) error {
	base := dst.Len()
	for _, node := range src.Nodes() {
		ins := make([]int, len(node.Inputs))
		for i, in := range node.Inputs {
			if in == graph.InputID {
				ins[i] = base - 1 // previous op, or the graph input when empty
			} else {
				ins[i] = in + base
			}
		}
		if _, err := dst.Add(node.Op, ins...); err != nil {
			return err
		}
	}
	return nil
}

// archive serializes a shard graph with its weights.
func archive(g *graph.Graph) ([]byte, error) {
	var buf bytes.Buffer
	if err := modelio.Save(&buf, g, true); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// BundleWeightBytes sums a packaged archive set's total size — what a
// deployment pipeline would upload to the platform.
func BundleWeightBytes(bundles []Bundle) int64 {
	var total int64
	for _, b := range bundles {
		total += int64(len(b.Archive))
	}
	return total
}
