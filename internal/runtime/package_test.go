package runtime

import (
	"bytes"
	"math/rand"
	"testing"

	"gillis/internal/modelio"
	"gillis/internal/partition"
	"gillis/internal/tensor"
)

func TestPackageBundles(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	bundles, err := Package(units, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Plan: channel×2 (2 workers), spatial×3 with master (1 master shard +
	// 2 workers), whole-on-master (1 master shard). Total 6 bundles.
	if len(bundles) != 6 {
		for _, b := range bundles {
			t.Log(b.Function, len(b.Archive))
		}
		t.Fatalf("got %d bundles, want 6", len(bundles))
	}
	names := map[string]bool{}
	for _, b := range bundles {
		names[b.Function] = true
		if len(b.Archive) == 0 {
			t.Errorf("%s: empty archive", b.Function)
		}
	}
	for _, want := range []string{"g0-p0", "g0-p1", "g1-p1", "g1-p2", "master-g1", "master-g2"} {
		if !names[want] {
			t.Errorf("missing bundle %s (have %v)", want, names)
		}
	}
	if BundleWeightBytes(bundles) <= 0 {
		t.Fatal("bundle bytes must be positive")
	}
}

// Channel shards must carry only their slice of the weights, and a loaded
// shard must compute exactly its partition's output.
func TestPackageChannelShardExecutes(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	bundles, err := Package(units, plan)
	if err != nil {
		t.Fatal(err)
	}
	var shard []byte
	for _, b := range bundles {
		if b.Function == "g0-p1" { // channel partition 1 of the stem unit
			shard = b.Archive
		}
	}
	g, err := modelio.Load(bytes.NewReader(shard))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Rand(rand.New(rand.NewSource(3)), 1, 3, 24, 24)
	got, err := g.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	full, err := units[0].Sub.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	outC := units[0].OutChannels()
	wantSlice, err := full.SliceDim(0, outC/2, outC)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, wantSlice) {
		t.Fatal("loaded channel shard output mismatch")
	}
	// The shard's weights are roughly half the unit's.
	if g.ParamBytes() >= units[0].ParamBytes {
		t.Fatalf("channel shard weights %d should be below unit's %d", g.ParamBytes(), units[0].ParamBytes)
	}
}

// Spatial shards replicate the whole group's weights and reproduce the
// group output when run whole.
func TestPackageSpatialShardExecutes(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	bundles, err := Package(units, plan)
	if err != nil {
		t.Fatal(err)
	}
	var shard []byte
	for _, b := range bundles {
		if b.Function == "g1-p1" {
			shard = b.Archive
		}
	}
	g, err := modelio.Load(bytes.NewReader(shard))
	if err != nil {
		t.Fatal(err)
	}
	wantParams := units[1].ParamBytes + units[2].ParamBytes
	if g.ParamBytes() != wantParams {
		t.Fatalf("spatial shard params %d, want %d (replicated group)", g.ParamBytes(), wantParams)
	}
	// Running the shard whole equals running the group's units in sequence.
	x, err := units[0].Sub.Forward(tensor.Rand(rand.New(rand.NewSource(4)), 1, 3, 24, 24))
	if err != nil {
		t.Fatal(err)
	}
	want, err := partition.ForwardChain(units[1:3], x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(want, got) {
		t.Fatal("spatial shard output mismatch")
	}
}

func TestPackageRequiresWeights(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	// Strip weights by re-linearizing a fresh, uninitialized model.
	g, err := modelio.Load(func() *bytes.Reader {
		var buf bytes.Buffer
		_ = modelio.Save(&buf, units[0].Sub, false)
		return bytes.NewReader(buf.Bytes())
	}())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := partition.Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	freshPlan := &partition.Plan{Model: "x", Groups: []partition.GroupPlan{
		{First: 0, Last: len(fresh) - 1, Option: partition.Option{Dim: partition.DimNone, Parts: 1}, OnMaster: true},
	}}
	if _, err := Package(fresh, freshPlan); err == nil {
		t.Fatal("expected uninitialized-weights error")
	}
	_ = plan
}
