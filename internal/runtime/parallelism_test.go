package runtime

import (
	"math/rand"
	"testing"

	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
)

// serveOnce deploys the mixed plan with the given options and serves one
// query, returning the result.
func serveOnce(t *testing.T, units []*partition.Unit, plan *partition.Plan, x *tensor.Tensor, mode ExecMode, opts ...DeployOption) Result {
	t.Helper()
	var out Result
	runClient(t, platform.AWSLambda(), 1, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := Deploy(p, units, plan, mode, opts...)
		if err != nil {
			t.Error(err)
			return
		}
		if err := d.Prewarm(); err != nil {
			t.Error(err)
			return
		}
		res, err := d.Serve(proc, x)
		if err != nil {
			t.Error(err)
			return
		}
		out = res
	})
	return out
}

// TestParallelismPreservesOutputsBitwise is the serving-level statement of
// the kernel determinism invariant: a deployment modeling multi-vCPU
// instances must produce exactly the bytes a 1-vCPU deployment produces.
func TestParallelismPreservesOutputsBitwise(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	x := tensor.Rand(rand.New(rand.NewSource(11)), 1, 3, 24, 24)
	want, err := partition.ForwardChain(units, x)
	if err != nil {
		t.Fatal(err)
	}
	for _, vcpus := range []int{1, 2, 6} {
		res := serveOnce(t, units, plan, x, Real, WithParallelism(vcpus))
		if res.Output == nil || !tensor.Equal(res.Output, want) {
			t.Fatalf("parallelism %d: fork-join output diverged from monolithic execution", vcpus)
		}
	}
}

// TestParallelismSpeedsUpSimulatedCompute checks the modeled side of the
// knob: more vCPUs per instance must strictly reduce simulated latency, and
// never below the Amdahl bound.
func TestParallelismSpeedsUpSimulatedCompute(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	lat1 := serveOnce(t, units, plan, nil, ShapeOnly, WithParallelism(1)).LatencyMs
	lat4 := serveOnce(t, units, plan, nil, ShapeOnly, WithParallelism(4)).LatencyMs
	if lat1 <= 0 || lat4 <= 0 {
		t.Fatalf("bad latencies: %v, %v", lat1, lat4)
	}
	if lat4 >= lat1 {
		t.Fatalf("4 vCPUs (%.3f ms) must beat 1 vCPU (%.3f ms)", lat4, lat1)
	}
	var o deployOpts
	WithParallelism(4)(&o)
	if ratio := lat1 / lat4; ratio > o.speedup() {
		t.Fatalf("latency ratio %.2f exceeds the Amdahl speedup bound %.2f (network/dispatch must not scale)", ratio, o.speedup())
	}
}

// TestWithParallelismIgnoresNonPositive pins the "unspecified" default.
func TestWithParallelismIgnoresNonPositive(t *testing.T) {
	var o deployOpts
	WithParallelism(0)(&o)
	WithParallelism(-3)(&o)
	if o.parallelism != 0 {
		t.Fatalf("non-positive vCPU counts must be ignored, got %d", o.parallelism)
	}
	if o.speedup() != 1 {
		t.Fatalf("unspecified parallelism must not rescale compute, got %v", o.speedup())
	}
}
