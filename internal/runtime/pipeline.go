package runtime

import (
	"fmt"

	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
)

// PipelineDeployment is the §V-B Pipeline baseline: a single function
// serves a model too large for its memory by sequentially loading layer
// partitions from object storage (S3 in the paper), executing them one at
// a time and evicting them afterwards.
type PipelineDeployment struct {
	p      *platform.Platform
	units  []*partition.Unit
	mode   ExecMode
	prefix string
	chunks []pipelineChunk
	opts   deployOpts

	// Function is the serving function's name.
	Function string
}

// pipelineChunk is one storage-staged stage of the pipeline.
type pipelineChunk struct {
	first, last int
	weightBytes int64
	flops       int64
	opBytes     int64
	key         string
}

// DeployPipeline packs consecutive units into storage chunks that fit the
// function's weight budget, seeds object storage, and registers the serving
// function.
func DeployPipeline(p *platform.Platform, units []*partition.Unit, mode ExecMode, opts ...DeployOption) (*PipelineDeployment, error) {
	if len(units) == 0 {
		return nil, fmt.Errorf("runtime: no units")
	}
	budget := int64(p.Config().WeightBudgetMB) * 1e6
	d := &PipelineDeployment{
		p:      p,
		units:  units,
		mode:   mode,
		prefix: fmt.Sprintf("%s-pipe%d", modelNameOf(units), p.NextDeploySeq()),
	}
	for _, opt := range opts {
		opt(&d.opts)
	}
	d.Function = d.prefix + "-fn"

	// Greedy packing: extend the chunk while weights + peak activations
	// stay within budget.
	first := 0
	var weight int64
	for i, u := range units {
		act := tensor.SizeBytes(u.InShape) + tensor.SizeBytes(u.OutShape)
		if u.ParamBytes+act > budget {
			return nil, fmt.Errorf("runtime: unit %d (%s) alone exceeds the function budget; pipeline infeasible", i, u.Name)
		}
		if weight+u.ParamBytes+act > budget && i > first {
			d.appendChunk(units, first, i-1)
			first, weight = i, 0
		}
		weight += u.ParamBytes
	}
	d.appendChunk(units, first, len(units)-1)

	for _, c := range d.chunks {
		p.Seed(c.key, platform.Object{Bytes: c.weightBytes})
	}
	if err := p.Register(d.Function, d.handler); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *PipelineDeployment) appendChunk(units []*partition.Unit, first, last int) {
	c := pipelineChunk{first: first, last: last}
	for _, u := range units[first : last+1] {
		c.weightBytes += u.ParamBytes
		c.flops += u.FLOPs
	}
	gr, err := buildGroupRuntime(units, partition.GroupPlan{
		First: first, Last: last, Option: partition.Option{Dim: partition.DimNone, Parts: 1},
	})
	if err == nil {
		c.opBytes = gr.opBytes
	}
	c.key = fmt.Sprintf("%s/chunk%d", d.prefix, len(d.chunks))
	d.chunks = append(d.chunks, c)
}

// Chunks returns the number of storage-staged stages.
func (d *PipelineDeployment) Chunks() int { return len(d.chunks) }

// Prewarm warms the serving function.
func (d *PipelineDeployment) Prewarm() error { return d.p.Prewarm(d.Function, 1) }

// PipelineResult reports one pipelined query with the paper's Fig. 11
// breakdown into computation and network (weight-loading) time.
type PipelineResult struct {
	Output    *tensor.Tensor
	LatencyMs float64
	ComputeMs float64
	LoadMs    float64
	BilledMs  int64
}

// Serve executes one query through the pipeline.
func (d *PipelineDeployment) Serve(proc *simnet.Proc, input *tensor.Tensor) (PipelineResult, error) {
	payload := platform.Payload{Bytes: tensor.SizeBytes(d.units[0].InShape)}
	if d.mode == Real {
		if input == nil {
			return PipelineResult{}, fmt.Errorf("runtime: Real mode requires an input tensor")
		}
		payload.Data = input
		payload.Bytes = input.Bytes()
	}
	res, err := d.p.InvokeFrom(proc, d.Function, payload)
	if err != nil {
		return PipelineResult{}, err
	}
	br, ok := res.Resp.Data.(*pipelineBreakdown)
	if !ok {
		return PipelineResult{}, fmt.Errorf("runtime: pipeline returned %T", res.Resp.Data)
	}
	return PipelineResult{
		Output:    br.output,
		LatencyMs: res.HandlerMs,
		ComputeMs: br.computeMs,
		LoadMs:    br.loadMs,
		BilledMs:  res.TotalBilledMs,
	}, nil
}

type pipelineBreakdown struct {
	output    *tensor.Tensor
	computeMs float64
	loadMs    float64
}

func (d *PipelineDeployment) handler(ctx *platform.Ctx, payload platform.Payload) (platform.Payload, error) {
	var cur *tensor.Tensor
	if d.mode == Real {
		var ok bool
		cur, ok = payload.Data.(*tensor.Tensor)
		if !ok {
			return platform.Payload{}, fmt.Errorf("runtime: pipeline got %T", payload.Data)
		}
	}
	br := &pipelineBreakdown{}
	for _, c := range d.chunks {
		before := ctx.Proc().Now()
		if _, err := ctx.StorageGet(c.key); err != nil {
			return platform.Payload{}, err
		}
		br.loadMs += float64(ctx.Proc().Now()-before) / 1e6

		before = ctx.Proc().Now()
		ctx.ComputeOp(int64(float64(c.flops)/d.opts.speedup()), c.opBytes)
		br.computeMs += float64(ctx.Proc().Now()-before) / 1e6
		if d.mode == Real {
			restore := d.opts.kernelScope()
			out, err := partition.ForwardChain(d.units[c.first:c.last+1], cur)
			restore()
			if err != nil {
				return platform.Payload{}, err
			}
			cur = out
		}
	}
	br.output = cur
	last := d.units[len(d.units)-1]
	return platform.Payload{Bytes: tensor.SizeBytes(last.OutShape), Data: br}, nil
}
