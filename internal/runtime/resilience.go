package runtime

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/simnet"
	"gillis/internal/stats"
	"gillis/internal/tensor"
	"gillis/internal/trace"
)

// This file is the runtime's resilience layer: per-attempt deadlines,
// bounded retries with exponential backoff, hedged (tail-tolerant) backup
// requests, and a master-local fallback for DimNone groups. When no
// resilience option is set, runGroup takes the original naive path and none
// of this code runs, so naive deployments behave byte-identically to
// earlier versions.

// Resilience is per-query resilience telemetry.
type Resilience struct {
	// Retries counts retried invocation attempts (workers + the client's
	// master invocation).
	Retries int
	// Hedges counts backup invocations launched; HedgesWon counts races the
	// backup won.
	Hedges    int
	HedgesWon int
	// FaultsSurvived counts faults the query absorbed without failing
	// (successful retries, master invocation retries, and fallbacks).
	FaultsSurvived int
	// Fallbacks counts DimNone groups the master re-executed locally after
	// their worker failed past the retry budget.
	Fallbacks int
	// ExtraBilledMs is the billed time attributable to resilience overhead:
	// failed attempts, hedge losers, and abandoned (deadline-exceeded)
	// invocations. It is a lower bound — work that settles after the query
	// returns loses attribution (the platform's BilledMsTotal is
	// authoritative for aggregate cost).
	ExtraBilledMs int64
}

func (r *Resilience) add(o Resilience) {
	r.Retries += o.Retries
	r.Hedges += o.Hedges
	r.HedgesWon += o.HedgesWon
	r.FaultsSurvived += o.FaultsSurvived
	r.Fallbacks += o.Fallbacks
	r.ExtraBilledMs += o.ExtraBilledMs
}

// queryStats accumulates one query's Resilience across the caller processes
// a resilient fork spawns.
type queryStats struct {
	mu sync.Mutex
	r  Resilience
}

func (q *queryStats) retry()    { q.mu.Lock(); q.r.Retries++; q.mu.Unlock() }
func (q *queryStats) hedged()   { q.mu.Lock(); q.r.Hedges++; q.mu.Unlock() }
func (q *queryStats) wonHedge() { q.mu.Lock(); q.r.HedgesWon++; q.mu.Unlock() }
func (q *queryStats) survive()  { q.mu.Lock(); q.r.FaultsSurvived++; q.mu.Unlock() }
func (q *queryStats) fellBack() { q.mu.Lock(); q.r.Fallbacks++; q.mu.Unlock() }
func (q *queryStats) addExtra(ms int64) {
	if ms == 0 {
		return
	}
	q.mu.Lock()
	q.r.ExtraBilledMs += ms
	q.mu.Unlock()
}
func (q *queryStats) snapshot() Resilience { q.mu.Lock(); defer q.mu.Unlock(); return q.r }

// ErrDeadline marks a worker attempt abandoned because it exceeded the
// deployment's per-attempt deadline.
var ErrDeadline = errors.New("runtime: worker attempt deadline exceeded")

// errHedgeAbandoned fails a hedge race whose caller stopped waiting; it
// routes late completions into ExtraBilledMs accounting.
var errHedgeAbandoned = errors.New("runtime: hedge race abandoned at deadline")

// minHedgeSamples is how many latency observations a group needs before
// hedging activates; below it there is no meaningful percentile.
const minHedgeSamples = 8

// maxHedgeSamples bounds each group's latency window (oldest dropped).
const maxHedgeSamples = 256

// latencyHistory tracks per-group successful worker-call latencies; the
// hedging option derives its trigger threshold from it.
type latencyHistory struct {
	mu      sync.Mutex
	samples map[int][]float64
}

func newLatencyHistory() *latencyHistory {
	return &latencyHistory{samples: make(map[int][]float64)}
}

func (h *latencyHistory) record(gi int, ms float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := append(h.samples[gi], ms)
	if len(s) > maxHedgeSamples {
		s = s[len(s)-maxHedgeSamples:]
	}
	h.samples[gi] = s
}

// threshold returns the pctl-th percentile of the group's observed
// latencies, and whether enough samples exist for hedging to activate.
func (h *latencyHistory) threshold(gi int, pctl float64) (float64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.samples[gi]
	if len(s) < minHedgeSamples {
		return 0, false
	}
	return stats.Percentile(s, pctl), true
}

func msToDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// watchAbandoned attributes the eventual billing of an abandoned invocation
// to the query's ExtraBilledMs once it settles.
func (d *Deployment) watchAbandoned(pr *simnet.Promise[platform.InvokeResult], qs *queryStats) {
	d.p.Env().Go("abandon-watch", func(wp *simnet.Proc) {
		res, err := pr.Wait(wp)
		if err != nil {
			qs.addExtra(platform.BilledMsOf(err))
			return
		}
		qs.addExtra(res.TotalBilledMs)
	})
}

// callWorker invokes one worker partition with the deployment's full
// resilience budget: per-attempt deadline, hedging, and bounded retries
// with exponential backoff. proc is the process driving the call (the
// master's own, or a spawned caller in a resilient fork-join round).
func (d *Deployment) callWorker(proc *simnet.Proc, ctx *platform.Ctx, gi, part int, req platform.Payload, qs *queryStats, parent *trace.Span) (platform.InvokeResult, error) {
	csp := parent.Childf(trace.KindCall, "call:g%d.p%d", gi, part)
	return d.callWorkerSpan(proc, ctx, gi, part, req, qs, csp)
}

// callWorkerSpan is callWorker recording into an already-opened call span
// (launchWorker opens it at fork time, before the caller process is
// scheduled).
func (d *Deployment) callWorkerSpan(proc *simnet.Proc, ctx *platform.Ctx, gi, part int, req platform.Payload, qs *queryStats, csp *trace.Span) (platform.InvokeResult, error) {
	name := d.workerName(gi, part)
	attempts := d.opts.retries + 1
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			qs.retry()
			csp.Event("retry", "attempt", strconv.Itoa(a))
			proc.Sleep(msToDur(d.opts.backoff(a)))
		}
		start := proc.Now()
		res, err := d.attemptWorker(proc, ctx, gi, name, req, qs, csp)
		if err == nil {
			d.hist.record(gi, float64(proc.Now()-start)/1e6)
			if a > 0 {
				qs.survive()
			}
			csp.EndSpan()
			return res, nil
		}
		qs.addExtra(platform.BilledMsOf(err))
		lastErr = err
	}
	csp.Fail("", lastErr.Error())
	csp.EndSpan()
	return platform.InvokeResult{}, lastErr
}

type hedgeOut struct {
	res    platform.InvokeResult
	backup bool
}

// attemptWorker makes one invocation attempt, hedging with a backup request
// when the primary outlives the group's latency percentile.
func (d *Deployment) attemptWorker(proc *simnet.Proc, ctx *platform.Ctx, gi int, name string, req platform.Payload, qs *queryStats, csp *trace.Span) (platform.InvokeResult, error) {
	asp := csp.Child(trace.KindAttempt, "attempt")
	primary, psp := ctx.InvokeAsyncSpan(name, req, asp)
	deadline := d.opts.deadlineMs

	var thresh float64
	hedging := false
	if d.opts.hedgePctl > 0 && !d.hedgeOff.Load() {
		thresh, hedging = d.hist.threshold(gi, d.opts.hedgePctl)
	}

	if !hedging {
		if deadline <= 0 {
			res, err := primary.Wait(proc)
			endAttempt(asp, err)
			return res, err
		}
		res, err := primary.WaitTimeout(proc, msToDur(deadline))
		if errors.Is(err, simnet.ErrTimeout) {
			// The invocation span outlives this attempt; mark it so trace
			// invariants accept the overhang, and so billing roll-ups know
			// the subtree has unattributed work.
			psp.SetAttr("abandoned", "deadline")
			d.watchAbandoned(primary, qs)
			err = fmt.Errorf("%s: %w", name, ErrDeadline)
			endAttempt(asp, err)
			return platform.InvokeResult{}, err
		}
		endAttempt(asp, err)
		return res, err
	}

	// Phase 1: give the primary until the hedge point (clamped to the
	// deadline) before spending money on a backup.
	wait1 := thresh
	if deadline > 0 && deadline < wait1 {
		wait1 = deadline
	}
	res, err := primary.WaitTimeout(proc, msToDur(wait1))
	if err == nil || !errors.Is(err, simnet.ErrTimeout) {
		endAttempt(asp, err)
		return res, err
	}
	if deadline > 0 && wait1 >= deadline {
		psp.SetAttr("abandoned", "deadline")
		d.watchAbandoned(primary, qs)
		err = fmt.Errorf("%s: %w", name, ErrDeadline)
		endAttempt(asp, err)
		return platform.InvokeResult{}, err
	}

	// Phase 2: the primary is a suspected straggler — race it against a
	// backup; first response wins, the loser's billing becomes overhead.
	qs.hedged()
	asp.Event("hedge")
	psp.SetAttr("hedge", "primary")
	backup, bsp := ctx.InvokeAsyncSpan(name, req, asp)
	bsp.SetAttr("hedge", "backup")
	env := d.p.Env()
	win := simnet.NewPromise[hedgeOut](env)
	var fails atomic.Int32
	watch := func(pr *simnet.Promise[platform.InvokeResult], sp *trace.Span, isBackup bool) {
		env.Go("hedge-watch:"+name, func(wp *simnet.Proc) {
			res, err := pr.Wait(wp)
			if err != nil {
				qs.addExtra(platform.BilledMsOf(err))
				if fails.Add(1) == 2 {
					win.TryFail(err)
				}
				return
			}
			if win.TryResolve(hedgeOut{res: res, backup: isBackup}) {
				if isBackup {
					sp.SetAttr("hedge", "won-backup")
				} else {
					sp.SetAttr("hedge", "won-primary")
				}
				return
			}
			sp.SetAttr("hedge", "lost")
			qs.addExtra(res.TotalBilledMs) // lost the race
		})
	}
	watch(primary, psp, false)
	watch(backup, bsp, true)

	var out hedgeOut
	var werr error
	if deadline > 0 {
		out, werr = win.WaitTimeout(proc, msToDur(deadline-wait1))
		if errors.Is(werr, simnet.ErrTimeout) {
			// Nobody answered in time: abandon both. Failing the race
			// promise routes their eventual completions to addExtra.
			win.TryFail(errHedgeAbandoned)
			werr = fmt.Errorf("%s: %w", name, ErrDeadline)
			endAttempt(asp, werr)
			return platform.InvokeResult{}, werr
		}
	} else {
		out, werr = win.Wait(proc)
	}
	if werr != nil {
		endAttempt(asp, werr)
		return platform.InvokeResult{}, werr
	}
	if out.backup {
		qs.wonHedge()
		qs.survive()
		asp.Event("hedge-win")
	}
	endAttempt(asp, nil)
	return out.res, nil
}

// endAttempt settles an attempt span: mark the failure, then close it.
func endAttempt(asp *trace.Span, err error) {
	if err != nil {
		asp.Fail("", err.Error())
	}
	asp.EndSpan()
}

// launchWorker starts one fork-join worker call. Naive deployments keep the
// original direct InvokeAsync; resilient ones drive callWorker from a
// spawned caller process so retries and hedges of different partitions
// overlap in time, exactly like the original fork.
// It returns the promise together with the call's span (the invocation span
// on the naive path), so a failing fork-join round can mark still-running
// siblings abandoned.
func (d *Deployment) launchWorker(ctx *platform.Ctx, gi, part int, req platform.Payload, qs *queryStats, gsp *trace.Span) (*simnet.Promise[platform.InvokeResult], *trace.Span) {
	if !d.opts.resilient() {
		return ctx.InvokeAsyncSpan(d.workerName(gi, part), req, gsp)
	}
	csp := gsp.Childf(trace.KindCall, "call:g%d.p%d", gi, part)
	pr := simnet.NewPromise[platform.InvokeResult](d.p.Env())
	d.p.Env().Go("call:"+d.workerName(gi, part), func(proc *simnet.Proc) {
		res, err := d.callWorkerSpan(proc, ctx, gi, part, req, qs, csp)
		if err != nil {
			pr.Fail(err)
			return
		}
		pr.Resolve(res)
	})
	return pr, csp
}

// abandonUnsettled marks the spans of still-unsettled sibling worker calls:
// their caller stopped waiting (the round already failed), so they settle
// after their parent ends — which trace invariants only accept when marked.
func abandonUnsettled(promises []*simnet.Promise[platform.InvokeResult], spans []*trace.Span) {
	for i, pr := range promises {
		if _, _, ok := pr.Poll(); !ok {
			spans[i].SetAttr("abandoned", "sibling-failure")
		}
	}
}

// fallbackKey names the object-storage copy of a group's weights kept for
// graceful degradation.
func (d *Deployment) fallbackKey(gi int) string {
	return fmt.Sprintf("%s-weights-g%d", d.prefix, gi)
}

// fallbackLocal is the graceful-degradation path for a DimNone group whose
// worker failed past the retry budget: the master fetches the group's
// weights from object storage (charged at storage speed) and executes the
// group locally. Real-mode outputs are computed by the same kernels, so the
// result stays bitwise identical to the healthy path.
func (d *Deployment) fallbackLocal(ctx *platform.Ctx, gi int, gr *groupRuntime, in *tensor.Tensor, qs *queryStats, gsp *trace.Span) (*tensor.Tensor, error) {
	fsp := gsp.Child(trace.KindFallback, "fallback")
	if _, err := ctx.StorageGet(d.fallbackKey(gi)); err != nil {
		fsp.Fail("", err.Error())
		fsp.EndSpan()
		return nil, err
	}
	qs.fellBack()
	qs.survive()
	d.computeScaled(ctx, gr, 1.0)
	if d.mode == Real {
		restore := d.opts.kernelScope()
		restoreObs := observeOps(fsp)
		out, err := partition.ForwardChain(gr.units, in)
		restoreObs()
		restore()
		fsp.EndSpan()
		return out, err
	}
	fsp.EndSpan()
	return nil, nil
}
