package runtime

import (
	"math/rand"
	"testing"

	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
)

// resilPlan covers every resilient code path: a pure fork (channel), a
// mixed master+worker fork (spatial), and a remote DimNone group (the
// fallback target).
func resilPlan(t *testing.T, units []*partition.Unit) *partition.Plan {
	t.Helper()
	plan := &partition.Plan{Model: "tinycnn", Groups: []partition.GroupPlan{
		{First: 0, Last: 0, Option: partition.Option{Dim: partition.DimChannel, Parts: 2}},
		{First: 1, Last: 2, Option: partition.Option{Dim: partition.DimSpatial, Parts: 2}, OnMaster: true},
		{First: 3, Last: 3, Option: partition.Option{Dim: partition.DimNone, Parts: 1}},
	}}
	if err := plan.Validate(units); err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestResilientServes1000Through5pctFailures is the PR's acceptance
// criterion: with a 5% injected invocation-failure rate and retries
// enabled, a residual-CNN fork-join deployment completes 1000/1000 queries
// in Real mode with outputs bitwise identical to the fault-free run.
func TestResilientServes1000Through5pctFailures(t *testing.T) {
	units := tinyCNN(t)
	plan := resilPlan(t, units)
	x := tensor.Rand(rand.New(rand.NewSource(7)), 1, 3, 24, 24)
	want, err := partition.ForwardChain(units, x)
	if err != nil {
		t.Fatal(err)
	}
	cfg := platform.AWSLambda()
	cfg.Faults = platform.FaultProfile{FailureProb: 0.05}
	const n = 1000
	var totalRetries, survived int
	runClient(t, cfg, 42, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := Deploy(p, units, plan, Real, WithRetries(3, 5), WithMasterFallback())
		if err != nil {
			t.Error(err)
			return
		}
		if err := d.Prewarm(); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			res, err := d.Serve(proc, x)
			if err != nil {
				t.Errorf("query %d failed despite retries: %v", i, err)
				return
			}
			if !tensor.Equal(res.Output, want) {
				t.Errorf("query %d output differs from fault-free run", i)
				return
			}
			totalRetries += res.Resilience.Retries
			survived += res.Resilience.FaultsSurvived
		}
	})
	if t.Failed() {
		return
	}
	// At 5% per-invocation failure over ~6 invocations per query, faults
	// must actually have been absorbed — otherwise the test proves nothing.
	if totalRetries == 0 || survived == 0 {
		t.Fatalf("no faults encountered (retries=%d survived=%d); fault injection inactive?", totalRetries, survived)
	}
	t.Logf("1000/1000 queries, %d retries, %d faults survived", totalRetries, survived)
}

// TestNaiveFailsUnderFaults shows the counterpart: the no-retry
// configuration demonstrably fails queries at the same fault rate.
func TestNaiveFailsUnderFaults(t *testing.T) {
	units := tinyCNN(t)
	plan := resilPlan(t, units)
	x := tensor.Rand(rand.New(rand.NewSource(7)), 1, 3, 24, 24)
	cfg := platform.AWSLambda()
	cfg.Faults = platform.FaultProfile{FailureProb: 0.05}
	failures := 0
	runClient(t, cfg, 42, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := Deploy(p, units, plan, Real)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 200; i++ {
			if _, err := d.Serve(proc, x); err != nil {
				failures++
			}
		}
	})
	if failures == 0 {
		t.Fatal("naive deployment survived 200 queries at 5% fault rate; faults not reaching the runtime")
	}
	t.Logf("naive config: %d/200 queries failed", failures)
}

// TestResilientFaultScheduleReproducible asserts same platform seed ⇒ same
// fault schedule, observed end to end through the serving runtime.
func TestResilientFaultScheduleReproducible(t *testing.T) {
	type obs struct {
		failed  bool
		retries int
		latency float64
	}
	run := func(seed int64) []obs {
		units := tinyCNN(t)
		plan := resilPlan(t, units)
		cfg := platform.AWSLambda()
		cfg.Faults = platform.FaultProfile{FailureProb: 0.1, StragglerProb: 0.1, StragglerFactor: 4, EvictionProb: 0.05}
		var out []obs
		runClient(t, cfg, seed, func(p *platform.Platform, proc *simnet.Proc) {
			d, err := Deploy(p, units, plan, ShapeOnly, WithRetries(2, 10), WithMasterFallback())
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 150; i++ {
				res, err := d.Serve(proc, nil)
				out = append(out, obs{failed: err != nil, retries: res.Resilience.Retries, latency: res.LatencyMs})
			}
		})
		return out
	}
	a, b := run(123), run(123)
	if len(a) != len(b) {
		t.Fatalf("query counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at query %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(124)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestHedgingAgainstStragglers exercises the hedge race: frequent 10×
// stragglers, hedging past the 80th percentile. Backups must launch and
// win races, and every query must still produce the exact output.
func TestHedgingAgainstStragglers(t *testing.T) {
	units := tinyCNN(t)
	plan := resilPlan(t, units)
	x := tensor.Rand(rand.New(rand.NewSource(9)), 1, 3, 24, 24)
	want, err := partition.ForwardChain(units, x)
	if err != nil {
		t.Fatal(err)
	}
	cfg := platform.AWSLambda()
	cfg.Faults = platform.FaultProfile{StragglerProb: 0.3, StragglerFactor: 10}
	var hedges, won int
	runClient(t, cfg, 11, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := Deploy(p, units, plan, Real, WithHedging(80), WithRetries(2, 5))
		if err != nil {
			t.Error(err)
			return
		}
		if err := d.Prewarm(); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 80; i++ {
			res, err := d.Serve(proc, x)
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			if !tensor.Equal(res.Output, want) {
				t.Errorf("query %d: hedged output differs", i)
				return
			}
			hedges += res.Resilience.Hedges
			won += res.Resilience.HedgesWon
		}
	})
	if t.Failed() {
		return
	}
	if hedges == 0 {
		t.Fatal("no hedges launched under 30% 10x stragglers")
	}
	if won == 0 {
		t.Fatal("no hedge race won; backups should beat 10x stragglers")
	}
	t.Logf("%d hedges launched, %d won", hedges, won)
}

// TestDeadlineAbandonsStragglers gives worker attempts a deadline derived
// from a fault-free calibration query: extreme stragglers blow it, are
// abandoned (billed time surfaces as ExtraBilledMs) and retried.
func TestDeadlineAbandonsStragglers(t *testing.T) {
	units := tinyCNN(t)
	plan := resilPlan(t, units)

	// Throttle compute so handler time dominates dispatch overheads —
	// otherwise a 50x compute straggler barely moves total latency on this
	// tiny model and the deadline never trips.
	slowCfg := platform.AWSLambda()
	slowCfg.GFLOPS = 0.02

	// Calibrate: the worst healthy group round, fault-free.
	var calMs float64
	runClient(t, slowCfg, 5, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := Deploy(p, units, plan, ShapeOnly)
		if err != nil {
			t.Error(err)
			return
		}
		if err := d.Prewarm(); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 5; i++ {
			res, err := d.Serve(proc, nil)
			if err != nil {
				t.Error(err)
				return
			}
			for _, g := range res.GroupMs {
				if g > calMs {
					calMs = g
				}
			}
		}
	})
	if t.Failed() {
		return
	}

	cfg := slowCfg
	cfg.Faults = platform.FaultProfile{StragglerProb: 0.3, StragglerFactor: 50}
	var retries int
	var extra int64
	runClient(t, cfg, 6, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := Deploy(p, units, plan, ShapeOnly, WithDeadline(3*calMs), WithRetries(5, 2), WithMasterFallback())
		if err != nil {
			t.Error(err)
			return
		}
		if err := d.Prewarm(); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 40; i++ {
			res, err := d.Serve(proc, nil)
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			retries += res.Resilience.Retries
			extra += res.Resilience.ExtraBilledMs
		}
	})
	if t.Failed() {
		return
	}
	if retries == 0 {
		t.Fatal("50x stragglers never hit the 3x deadline")
	}
	if extra == 0 {
		t.Fatal("abandoned attempts must surface billed time in ExtraBilledMs")
	}
	t.Logf("deadline: %d retries, %d extra billed ms", retries, extra)
}

// TestMasterFallbackServesCorrectOutput drives the DimNone worker to fail
// nearly always: the master must degrade to local execution and still
// produce the bitwise-exact output.
func TestMasterFallbackServesCorrectOutput(t *testing.T) {
	units := tinyCNN(t)
	plan := resilPlan(t, units)
	x := tensor.Rand(rand.New(rand.NewSource(13)), 1, 3, 24, 24)
	want, err := partition.ForwardChain(units, x)
	if err != nil {
		t.Fatal(err)
	}
	// At 70% per-invocation failure even the master exhausts its retry
	// budget sometimes, so client-level failures are tolerated here; the
	// point is that whenever a query does complete, worker outages on the
	// DimNone group were absorbed by the fallback with an exact output.
	cfg := platform.AWSLambda()
	cfg.Faults = platform.FaultProfile{FailureProb: 0.7}
	var fallbacks, served int
	runClient(t, cfg, 21, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := Deploy(p, units, plan, Real, WithRetries(4, 2), WithMasterFallback())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 60; i++ {
			res, err := d.Serve(proc, x)
			if err != nil {
				continue // master itself out of luck this query
			}
			if !tensor.Equal(res.Output, want) {
				t.Errorf("query %d: degraded output differs", i)
				return
			}
			served++
			fallbacks += res.Resilience.Fallbacks
		}
	})
	if t.Failed() {
		return
	}
	if served == 0 {
		t.Fatal("no query completed at all")
	}
	if fallbacks == 0 {
		t.Fatalf("0 fallbacks in %d served queries at 70%% failure; 0.7^5 per call should exhaust retries often", served)
	}
	t.Logf("%d fallbacks across %d served queries", fallbacks, served)
}

// TestNaivePathUnchangedByResilienceLayer pins that a deployment with no
// resilience options behaves exactly as before the layer existed: same
// latency and billing as the pre-refactor direct path, zero telemetry.
func TestNaivePathUnchangedByResilienceLayer(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	runClient(t, platform.AWSLambda(), 3, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := Deploy(p, units, plan, ShapeOnly)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := d.Serve(proc, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if res.Resilience != (Resilience{}) {
			t.Errorf("naive fault-free query reported telemetry: %+v", res.Resilience)
		}
	})
}

// TestResilienceCountersCombined is the table-driven satellite: with retries
// AND hedging enabled together, each fault regime must surface through the
// right Result.Resilience counters, and the cross-counter invariants must
// hold in every regime.
func TestResilienceCountersCombined(t *testing.T) {
	cases := []struct {
		name   string
		faults platform.FaultProfile
		seed   int64
		extra  []DeployOption
		check  func(t *testing.T, agg Resilience, served int)
	}{
		{
			// Crashed invocations are re-tried and absorbed; the hedge
			// trigger stays armed but crashes, not stragglers, dominate.
			name:   "retry-win",
			faults: platform.FaultProfile{FailureProb: 0.25},
			seed:   31,
			check: func(t *testing.T, agg Resilience, served int) {
				if agg.Retries == 0 {
					t.Error("25% crashes with a retry budget must record retries")
				}
				if agg.FaultsSurvived == 0 {
					t.Error("absorbed crashes must count as faults survived")
				}
				if agg.Fallbacks != 0 {
					t.Errorf("no fallback configured, got %d", agg.Fallbacks)
				}
				if agg.ExtraBilledMs == 0 {
					t.Error("failed attempts bill partial work; ExtraBilledMs must be positive")
				}
			},
		},
		{
			// 10x stragglers: backups fire past the latency percentile and
			// win races; retries stay rare.
			name:   "hedge-win",
			faults: platform.FaultProfile{StragglerProb: 0.3, StragglerFactor: 10},
			seed:   11,
			check: func(t *testing.T, agg Resilience, served int) {
				if agg.Hedges == 0 {
					t.Error("30% 10x stragglers must trigger hedges")
				}
				if agg.HedgesWon == 0 {
					t.Error("backups must win races against 10x stragglers")
				}
				if agg.Fallbacks != 0 {
					t.Errorf("no fallback configured, got %d", agg.Fallbacks)
				}
				if agg.ExtraBilledMs == 0 {
					t.Error("hedge losers must surface as ExtraBilledMs")
				}
			},
		},
		{
			// Past-budget failures on the DimNone group degrade to the
			// master-local fallback.
			name:   "fallback",
			faults: platform.FaultProfile{FailureProb: 0.6},
			seed:   21,
			extra:  []DeployOption{WithMasterFallback()},
			check: func(t *testing.T, agg Resilience, served int) {
				if served == 0 {
					t.Fatal("no query completed at all")
				}
				if agg.Fallbacks == 0 {
					t.Errorf("0 fallbacks in %d served queries at 60%% failure", served)
				}
				if agg.Retries == 0 || agg.FaultsSurvived == 0 {
					t.Errorf("retries=%d survived=%d; fallback regime must also retry", agg.Retries, agg.FaultsSurvived)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			units := tinyCNN(t)
			plan := resilPlan(t, units)
			cfg := platform.AWSLambda()
			cfg.Faults = tc.faults
			var agg Resilience
			served := 0
			runClient(t, cfg, tc.seed, func(p *platform.Platform, proc *simnet.Proc) {
				opts := append([]DeployOption{WithRetries(3, 5), WithHedging(80)}, tc.extra...)
				d, err := Deploy(p, units, plan, ShapeOnly, opts...)
				if err != nil {
					t.Error(err)
					return
				}
				if err := d.Prewarm(); err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < 80; i++ {
					res, err := d.Serve(proc, nil)
					if err != nil {
						continue // budget exhausted this query; counters still meaningful
					}
					served++
					agg.add(res.Resilience)
				}
			})
			if t.Failed() {
				return
			}
			if agg.HedgesWon > agg.Hedges {
				t.Errorf("HedgesWon %d > Hedges %d", agg.HedgesWon, agg.Hedges)
			}
			if agg.FaultsSurvived < agg.Fallbacks {
				t.Errorf("FaultsSurvived %d < Fallbacks %d (every fallback is a survived fault)", agg.FaultsSurvived, agg.Fallbacks)
			}
			tc.check(t, agg, served)
			t.Logf("%s: served=%d %+v", tc.name, served, agg)
		})
	}
}
