// Package runtime is Gillis's serving runtime: it deploys a partitioned
// model onto a (simulated) serverless platform and executes inference
// queries with the fork-join model of §III-B — a master function invokes
// worker functions holding model partitions, computes its own partitions
// when the plan places them there, reassembles partial tensors, and
// produces the final result over multiple fork-join rounds.
//
// Two baselines from §V are provided alongside: Default (whole model in one
// function) falls out of a trivial plan, and Pipeline (a single function
// streaming layer partitions from object storage) is implemented by
// DeployPipeline.
package runtime

import (
	"fmt"
	"math"
	"strconv"
	"sync/atomic"

	"gillis/internal/nn"
	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/profile"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
	"gillis/internal/trace"
)

// ExecMode selects how workers execute their partitions.
type ExecMode int

// Execution modes.
const (
	// Real performs the actual tensor math; outputs are bit-exact with
	// monolithic execution. Use for correctness at small scale.
	Real ExecMode = iota + 1
	// ShapeOnly skips tensor math (timing still reflects the partition's
	// exact FLOPs and payload bytes). Use for large-model experiments.
	ShapeOnly
)

// groupRuntime precomputes everything a group needs at query time.
type groupRuntime struct {
	gp          partition.GroupPlan
	units       []*partition.Unit
	flops       int64 // monolithic group FLOPs
	opBytes     int64 // monolithic bytes touched
	opCount     int   // number of ops (dispatch overheads)
	spatial     []partition.PartSlice
	channel     []partition.ChannelSlice
	inBytes     int64 // full group input payload
	outBytes    int64 // full group output payload
	outShape    []int
	weightBytes int64   // partition weight bytes (fallback fetch size)
	partFLOPs   []int64 // per partition
	partIn      []int64
	partOut     []int64
}

// Deployment is a model served under a plan on a platform.
type Deployment struct {
	p      *platform.Platform
	units  []*partition.Unit
	plan   *partition.Plan
	mode   ExecMode
	prefix string
	groups []*groupRuntime
	opts   deployOpts
	hist   *latencyHistory // per-group worker latencies (hedging trigger)

	// hedgeOff suppresses hedged backup requests at serve time without
	// redeploying — the gateway's brownout mode sheds hedge cost this way.
	hedgeOff atomic.Bool

	// Master is the entry function name.
	Master string
}

// SetHedging enables or disables hedged backup requests between queries.
// Disabling it overrides WithHedging at serve time (retries and fallback
// stay active); re-enabling restores the configured behaviour. Safe to call
// from a controller process between queries — in-flight hedge races are
// unaffected.
func (d *Deployment) SetHedging(enabled bool) { d.hedgeOff.Store(!enabled) }

// Deploy validates the plan against the platform's memory budget, registers
// the master and worker functions, and returns a ready deployment. It
// returns an error (the deployment-time analogue of the paper's OOM
// failures) if any function's resident set exceeds the weight budget.
func Deploy(p *platform.Platform, units []*partition.Unit, plan *partition.Plan, mode ExecMode, opts ...DeployOption) (*Deployment, error) {
	if err := plan.Validate(units); err != nil {
		return nil, err
	}
	if mode != Real && mode != ShapeOnly {
		return nil, fmt.Errorf("runtime: invalid exec mode %d", mode)
	}
	if mode == Real {
		for _, u := range units {
			if !u.Sub.Initialized() {
				return nil, fmt.Errorf("runtime: Real mode requires initialized weights (unit %d)", u.Index)
			}
		}
	}
	budget := int64(p.Config().WeightBudgetMB) * 1e6

	d := &Deployment{
		p:      p,
		units:  units,
		plan:   plan,
		mode:   mode,
		prefix: fmt.Sprintf("%s-d%d", plan.Model, p.NextDeploySeq()),
		hist:   newLatencyHistory(),
	}
	for _, opt := range opts {
		opt(&d.opts)
	}
	d.Master = d.prefix + "-master"

	var masterBytes int64
	for gi, gp := range plan.Groups {
		gr, err := buildGroupRuntime(units, gp)
		if err != nil {
			return nil, err
		}
		ext, err := partition.GroupExtent(units, gp.First, gp.Last, gp.Option)
		if err != nil {
			return nil, err
		}
		if ext.WeightBytes+ext.ActBytes > budget {
			return nil, fmt.Errorf("runtime: group %d partition needs %d MB, exceeding the %d MB function budget (OOM)",
				gi, (ext.WeightBytes+ext.ActBytes)/1e6, budget/1e6)
		}
		if gp.OnMaster {
			masterBytes += ext.WeightBytes
		}
		gr.weightBytes = ext.WeightBytes
		d.groups = append(d.groups, gr)
	}
	if masterBytes > budget {
		return nil, fmt.Errorf("runtime: master resident weights %d MB exceed the %d MB budget (OOM)",
			masterBytes/1e6, budget/1e6)
	}

	if err := p.Register(d.Master, d.masterHandler); err != nil {
		return nil, err
	}
	if d.opts.fallback {
		// Keep a storage copy of every remote DimNone group's weights so
		// the master can degrade gracefully when that worker is down.
		for gi, gr := range d.groups {
			if gr.gp.Option.Dim == partition.DimNone && !gr.gp.OnMaster {
				p.Seed(d.fallbackKey(gi), platform.Object{Bytes: gr.weightBytes})
			}
		}
	}
	for gi, gr := range d.groups {
		parts := gr.gp.Option.Parts
		for part := 0; part < parts; part++ {
			if gr.gp.OnMaster && part == 0 {
				continue // the master computes partition 0 itself
			}
			if gr.gp.Option.Dim == partition.DimNone && gr.gp.OnMaster {
				continue
			}
			name := d.workerName(gi, part)
			gi, part := gi, part
			err := p.Register(name, func(ctx *platform.Ctx, payload platform.Payload) (platform.Payload, error) {
				return d.workerHandler(ctx, gi, part, payload)
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

func (d *Deployment) workerName(group, part int) string {
	return fmt.Sprintf("%s-g%d-p%d", d.prefix, group, part)
}

// Prefix returns the deployment's unique function-name prefix. It is
// process-order dependent (a global deployment counter); golden-trace tests
// strip it from serialized traces to stay stable across test orderings.
func (d *Deployment) Prefix() string { return d.prefix }

// Platform returns the platform the deployment serves on. Gateways and
// autoscalers use it to observe warm pools and billed totals.
func (d *Deployment) Platform() *platform.Platform { return d.p }

// WarmSets reports how many warm instance sets the deployment has standing
// by, counted as the master function's idle warm instances (Prewarm warms
// exactly one master per set).
func (d *Deployment) WarmSets() int { return d.p.WarmCount(d.Master) }

// Prewarm warms the master and one instance of every worker function,
// modeling Gillis's periodic warm-up pings (§III-A).
func (d *Deployment) Prewarm() error {
	if err := d.p.Prewarm(d.Master, 1); err != nil {
		return err
	}
	for gi, gr := range d.groups {
		for part := 0; part < gr.gp.Option.Parts; part++ {
			if gr.gp.OnMaster && part == 0 {
				continue
			}
			if gr.gp.Option.Dim == partition.DimNone && gr.gp.OnMaster {
				continue
			}
			if err := d.p.Prewarm(d.workerName(gi, part), 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// Result reports one served query.
type Result struct {
	// Output is the inference result (nil in ShapeOnly mode).
	Output *tensor.Tensor
	// LatencyMs is the inference latency: the master function's duration.
	LatencyMs float64
	// GroupMs traces the master-observed duration of each fork-join round,
	// in plan order (they sum to roughly LatencyMs).
	GroupMs []float64
	// BilledMs is the total billed function duration (master + workers),
	// C^S(G) of Eq. (2).
	BilledMs int64
	// ColdStart reports whether the master cold-started.
	ColdStart bool
	// Resilience reports the query's resilience telemetry (all zero for a
	// naive deployment on a fault-free platform).
	Resilience Resilience
}

// masterResp is the master function's response body.
type masterResp struct {
	output  *tensor.Tensor
	groupMs []float64
	resil   Resilience
}

// Serve executes one inference query from a client process. When the
// deployment has a retry budget, it also covers the master invocation
// itself — a crashed or evicted master is re-invoked with the same input,
// so Real-mode outputs are unaffected.
func (d *Deployment) Serve(proc *simnet.Proc, input *tensor.Tensor) (Result, error) {
	return d.serve(proc, input, nil)
}

// ServeTraced is Serve with query-level tracing: it records a span tree
// rooted at the query — invocations with their cold-start/transfer/execution
// phases, fork-join rounds, worker calls with retries and hedges, per-span
// billed-ms attribution — against the simulation's virtual clock. The trace
// is complete once the simulation drains (late-settling abandoned work still
// closes its spans after the query returns).
func (d *Deployment) ServeTraced(proc *simnet.Proc, input *tensor.Tensor) (Result, *trace.Trace, error) {
	tr := trace.New("query", d.p.Env().Stamp)
	root := tr.Root()
	res, err := d.serve(proc, input, root)
	if err != nil {
		root.Fail("", err.Error())
	} else if d.mode == Real && res.Output != nil {
		// Pin the Real-mode output in the trace: bitwise-deterministic
		// kernels yield the same digest at any kernel parallelism.
		root.SetAttr("output-digest", fmt.Sprintf("%016x", tensorDigest(res.Output)))
	}
	root.EndSpan()
	return res, tr, err
}

func (d *Deployment) serve(proc *simnet.Proc, input *tensor.Tensor, root *trace.Span) (Result, error) {
	payload := platform.Payload{Bytes: tensor.SizeBytes(d.units[0].InShape)}
	if d.mode == Real {
		if input == nil {
			return Result{}, fmt.Errorf("runtime: Real mode requires an input tensor")
		}
		payload.Data = input
		payload.Bytes = input.Bytes()
	}
	var lastErr error
	var extra int64
	clientRetries := 0
	for attempt := 0; attempt <= d.opts.retries; attempt++ {
		if attempt > 0 {
			clientRetries++
			root.Event("client-retry", "attempt", strconv.Itoa(attempt))
			proc.Sleep(msToDur(d.opts.backoff(attempt)))
		}
		res, err := d.p.InvokeFromSpan(proc, d.Master, payload, root)
		if err != nil {
			extra += platform.BilledMsOf(err)
			lastErr = err
			continue
		}
		out := Result{
			LatencyMs: res.HandlerMs,
			BilledMs:  res.TotalBilledMs,
			ColdStart: res.ColdStart,
		}
		mr, ok := res.Resp.Data.(*masterResp)
		if !ok {
			return Result{}, fmt.Errorf("runtime: master returned %T", res.Resp.Data)
		}
		out.Resilience = mr.resil
		out.Resilience.Retries += clientRetries
		out.Resilience.FaultsSurvived += clientRetries
		out.Resilience.ExtraBilledMs += extra
		out.GroupMs = mr.groupMs
		if d.mode == Real {
			if mr.output == nil {
				return Result{}, fmt.Errorf("runtime: master returned no tensor in Real mode")
			}
			out.Output = mr.output
		}
		d.recordQueryMetrics(out)
		return out, nil
	}
	return Result{}, lastErr
}

// recordQueryMetrics aggregates one served query into the platform's metrics
// registry (shared across queries, and across platforms via UseMetrics).
func (d *Deployment) recordQueryMetrics(out Result) {
	reg := d.p.Metrics()
	reg.Counter("runtime.queries").Inc()
	r := out.Resilience
	reg.Counter("runtime.retries").Add(int64(r.Retries))
	reg.Counter("runtime.hedges").Add(int64(r.Hedges))
	reg.Counter("runtime.hedge_wins").Add(int64(r.HedgesWon))
	reg.Counter("runtime.fallbacks").Add(int64(r.Fallbacks))
	reg.Counter("runtime.faults_survived").Add(int64(r.FaultsSurvived))
	reg.Counter("runtime.extra_billed_ms").Add(r.ExtraBilledMs)
	reg.Histogram("runtime.query_latency_ms").Observe(out.LatencyMs)
	reg.Histogram("runtime.query_billed_ms").Observe(float64(out.BilledMs))
}

// tensorDigest is a deterministic FNV-1a over the tensor's float bits.
func tensorDigest(t *tensor.Tensor) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, v := range t.Data() {
		b := math.Float32bits(v)
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(b >> s))
			h *= prime
		}
	}
	return h
}

// observeOps reports a per-operator kernel event into sp for every operator
// forward executed while it is installed. It returns the restore function.
// Install it only around pure Go forwards (no virtual-time sleeps), so the
// scoped process-wide hook never spans a scheduling point.
func observeOps(sp *trace.Span) (restore func()) {
	if sp == nil {
		return func() {}
	}
	return nn.SetObserver(func(op nn.Op) { sp.Event("op:" + op.Name()) })
}

// masterHandler orchestrates the fork-join rounds (Fig. 4). Batched
// invocations (a *batchReq body) take the batched round path; single-query
// payloads are untouched.
func (d *Deployment) masterHandler(ctx *platform.Ctx, payload platform.Payload) (platform.Payload, error) {
	if br, ok := payload.Data.(*batchReq); ok {
		return d.masterHandlerBatch(ctx, br)
	}
	var cur *tensor.Tensor
	if d.mode == Real {
		var ok bool
		cur, ok = payload.Data.(*tensor.Tensor)
		if !ok {
			return platform.Payload{}, fmt.Errorf("runtime: master got %T, want tensor", payload.Data)
		}
	}
	qs := &queryStats{}
	groupMs := make([]float64, 0, len(d.groups))
	for gi, gr := range d.groups {
		before := ctx.Proc().Now()
		gsp := ctx.Span().Childf(trace.KindGroup, "group%d", gi)
		next, err := d.runGroup(ctx, gi, gr, cur, qs, gsp)
		if err != nil {
			gsp.Fail("", err.Error())
			gsp.EndSpan()
			return platform.Payload{}, err
		}
		gsp.EndSpan()
		groupMs = append(groupMs, float64(ctx.Proc().Now()-before)/1e6)
		cur = next
	}
	last := d.groups[len(d.groups)-1]
	return platform.Payload{Bytes: last.outBytes, Data: &masterResp{output: cur, groupMs: groupMs, resil: qs.snapshot()}}, nil
}

// runGroup executes one layer group from the master's perspective.
func (d *Deployment) runGroup(ctx *platform.Ctx, gi int, gr *groupRuntime, in *tensor.Tensor, qs *queryStats, gsp *trace.Span) (*tensor.Tensor, error) {
	opt := gr.gp.Option

	// Whole group on the master: local execution.
	if opt.Dim == partition.DimNone && gr.gp.OnMaster {
		csp := gsp.Child(trace.KindCompute, "master-compute")
		d.computeScaled(ctx, gr, 1.0)
		if d.mode == Real {
			restore := d.opts.kernelScope()
			restoreObs := observeOps(csp)
			out, err := partition.ForwardChain(gr.units, in)
			restoreObs()
			restore()
			csp.EndSpan()
			return out, err
		}
		csp.EndSpan()
		return nil, nil
	}

	// Whole group on a single worker: remote round (with retries, and a
	// master-local fallback when graceful degradation is enabled).
	if opt.Dim == partition.DimNone {
		req := platform.Payload{Bytes: gr.inBytes}
		if d.mode == Real {
			req.Data = in
		}
		res, err := d.callWorker(ctx.Proc(), ctx, gi, 0, req, qs, gsp)
		if err != nil {
			if d.opts.fallback {
				return d.fallbackLocal(ctx, gi, gr, in, qs, gsp)
			}
			return nil, err
		}
		return d.tensorOf(res.Resp)
	}

	// Parallel round: fork workers, optionally compute partition 0 locally,
	// join and reassemble.
	firstWorker := 0
	if gr.gp.OnMaster {
		firstWorker = 1
	}
	promises := make([]*simnet.Promise[platform.InvokeResult], 0, opt.Parts-firstWorker)
	callSpans := make([]*trace.Span, 0, opt.Parts-firstWorker)
	for part := firstWorker; part < opt.Parts; part++ {
		req := platform.Payload{Bytes: gr.partIn[part]}
		if d.mode == Real {
			slab, err := d.partInput(gr, part, in)
			if err != nil {
				abandonUnsettled(promises, callSpans)
				return nil, err
			}
			req.Data = slab
		}
		pr, csp := d.launchWorker(ctx, gi, part, req, qs, gsp)
		promises = append(promises, pr)
		callSpans = append(callSpans, csp)
	}
	// When the round fails, the master stops waiting: sibling calls still in
	// flight settle after the group span ends, which trace invariants only
	// accept once marked abandoned.
	fail := func(err error) (*tensor.Tensor, error) {
		abandonUnsettled(promises, callSpans)
		return nil, err
	}

	outs := make([]*tensor.Tensor, opt.Parts)
	if gr.gp.OnMaster {
		csp := gsp.Child(trace.KindCompute, "master-part0")
		d.computeScaled(ctx, gr, flopFrac(gr, 0))
		if d.mode == Real {
			restore := d.opts.kernelScope()
			restoreObs := observeOps(csp)
			out, err := d.execPart(gr, 0, in)
			restoreObs()
			restore()
			if err != nil {
				csp.EndSpan()
				return fail(err)
			}
			outs[0] = out
		}
		csp.EndSpan()
	}
	for i, pr := range promises {
		res, err := pr.Wait(ctx.Proc())
		if err != nil {
			return fail(err)
		}
		if d.mode == Real {
			t, err := d.tensorOf(res.Resp)
			if err != nil {
				return fail(err)
			}
			outs[firstWorker+i] = t
		}
	}
	// Reassembly is memory-bandwidth work on the master.
	rsp := gsp.Child(trace.KindCompute, "reassemble")
	ctx.ComputeOp(0, gr.outBytes)
	if d.mode != Real {
		rsp.EndSpan()
		return nil, nil
	}
	dim := 1 // spatial: concatenate rows
	if opt.Dim == partition.DimChannel {
		dim = 0
	}
	out, err := tensor.ConcatDim(dim, outs...)
	rsp.EndSpan()
	return out, err
}

// workerHandler computes one partition of one group.
func (d *Deployment) workerHandler(ctx *platform.Ctx, gi, part int, payload platform.Payload) (platform.Payload, error) {
	if br, ok := payload.Data.(*batchReq); ok {
		return d.workerHandlerBatch(ctx, gi, part, br)
	}
	gr := d.groups[gi]
	if gr.gp.Option.Dim == partition.DimNone {
		d.computeScaled(ctx, gr, 1.0)
		resp := platform.Payload{Bytes: gr.outBytes}
		if d.mode == Real {
			in, ok := payload.Data.(*tensor.Tensor)
			if !ok {
				return platform.Payload{}, fmt.Errorf("runtime: worker got %T", payload.Data)
			}
			restore := d.opts.kernelScope()
			restoreObs := observeOps(ctx.Span())
			out, err := partition.ForwardChain(gr.units, in)
			restoreObs()
			restore()
			if err != nil {
				return platform.Payload{}, err
			}
			resp.Data = out
		}
		return resp, nil
	}

	d.computeScaled(ctx, gr, flopFrac(gr, part))
	resp := platform.Payload{Bytes: gr.partOut[part]}
	if d.mode == Real {
		in, ok := payload.Data.(*tensor.Tensor)
		if !ok {
			return platform.Payload{}, fmt.Errorf("runtime: worker got %T", payload.Data)
		}
		restore := d.opts.kernelScope()
		restoreObs := observeOps(ctx.Span())
		out, err := d.execPartFromSlab(gr, part, in)
		restoreObs()
		restore()
		if err != nil {
			return platform.Payload{}, err
		}
		resp.Data = out
	}
	return resp, nil
}

// computeScaled advances the worker's clock by the group's ops scaled to
// the partition's share of the work (exact FLOPs incl. halo redundancy).
// The modeled per-instance vCPU count divides FLOP time by its Amdahl
// speedup; bytes touched stay unscaled (memory bandwidth is shared across
// an instance's cores).
func (d *Deployment) computeScaled(ctx *platform.Ctx, gr *groupRuntime, frac float64) {
	ctx.ComputeOp(int64(float64(gr.flops)*frac/d.opts.speedup()), int64(float64(gr.opBytes)*frac))
}

func flopFrac(gr *groupRuntime, part int) float64 {
	if gr.flops == 0 {
		return 0
	}
	return float64(gr.partFLOPs[part]) / float64(gr.flops)
}

// partInput slices the group input for a partition (Real mode).
func (d *Deployment) partInput(gr *groupRuntime, part int, in *tensor.Tensor) (*tensor.Tensor, error) {
	if gr.gp.Option.Dim == partition.DimChannel {
		return in, nil // channel partitions consume the full input
	}
	return partition.InputSlab(in, gr.spatial[part])
}

// execPart runs a partition from the full group input (master side).
func (d *Deployment) execPart(gr *groupRuntime, part int, in *tensor.Tensor) (*tensor.Tensor, error) {
	slab, err := d.partInput(gr, part, in)
	if err != nil {
		return nil, err
	}
	return d.execPartFromSlab(gr, part, slab)
}

// execPartFromSlab runs a partition from its input slab (worker side).
func (d *Deployment) execPartFromSlab(gr *groupRuntime, part int, slab *tensor.Tensor) (*tensor.Tensor, error) {
	if gr.gp.Option.Dim == partition.DimChannel {
		cs := gr.channel[part]
		sub, err := partition.ChannelSubgraph(gr.units[0], cs.Channels.Lo, cs.Channels.Hi)
		if err != nil {
			return nil, err
		}
		return sub.Forward(slab)
	}
	return partition.ExecSpatialPart(gr.units, gr.spatial[part], slab)
}

func (d *Deployment) tensorOf(p platform.Payload) (*tensor.Tensor, error) {
	if d.mode != Real {
		return nil, nil
	}
	t, ok := p.Data.(*tensor.Tensor)
	if !ok {
		return nil, fmt.Errorf("runtime: response payload %T, want tensor", p.Data)
	}
	return t, nil
}

// buildGroupRuntime precomputes a group's slices, FLOPs and payload sizes.
func buildGroupRuntime(units []*partition.Unit, gp partition.GroupPlan) (*groupRuntime, error) {
	group := units[gp.First : gp.Last+1]
	gr := &groupRuntime{gp: gp, units: group}
	for _, u := range group {
		gr.flops += u.FLOPs
		shapes := u.NodeShapes()
		for _, node := range u.Sub.Nodes() {
			ins := make([][]int, len(node.Inputs))
			for i, in := range node.Inputs {
				if in < 0 {
					ins[i] = u.InShape
				} else {
					ins[i] = shapes[in]
				}
			}
			b, err := profile.OpBytes(node.Op, ins)
			if err != nil {
				return nil, err
			}
			gr.opBytes += b
			gr.opCount++
		}
	}
	gr.inBytes = tensor.SizeBytes(group[0].InShape)
	gr.outBytes = tensor.SizeBytes(group[len(group)-1].OutShape)
	gr.outShape = group[len(group)-1].OutShape

	switch gp.Option.Dim {
	case partition.DimNone:
		gr.partFLOPs = []int64{gr.flops}
		gr.partIn = []int64{gr.inBytes}
		gr.partOut = []int64{gr.outBytes}
	case partition.DimSpatial:
		slices, err := partition.SpatialSlices(group, gp.Option.Parts)
		if err != nil {
			return nil, err
		}
		gr.spatial = slices
		for _, ps := range slices {
			gr.partFLOPs = append(gr.partFLOPs, ps.FLOPs)
			gr.partIn = append(gr.partIn, ps.InBytes)
			gr.partOut = append(gr.partOut, ps.OutBytes)
		}
	case partition.DimChannel:
		slices, err := partition.ChannelSlices(group[0], gp.Option.Parts)
		if err != nil {
			return nil, err
		}
		gr.channel = slices
		for _, cs := range slices {
			gr.partFLOPs = append(gr.partFLOPs, cs.FLOPs)
			gr.partIn = append(gr.partIn, cs.InBytes)
			gr.partOut = append(gr.partOut, cs.OutBytes)
		}
	default:
		return nil, fmt.Errorf("runtime: unknown option %v", gp.Option)
	}
	return gr, nil
}

// DeployDefault deploys the Default baseline: the whole model in a single
// function (§V-B baseline 1).
func DeployDefault(p *platform.Platform, units []*partition.Unit, mode ExecMode, opts ...DeployOption) (*Deployment, error) {
	plan := &partition.Plan{
		Model: "default-" + modelNameOf(units),
		Groups: []partition.GroupPlan{{
			First: 0, Last: len(units) - 1,
			Option:   partition.Option{Dim: partition.DimNone, Parts: 1},
			OnMaster: true,
		}},
	}
	return Deploy(p, units, plan, mode, opts...)
}

// PredictedPlanOf exposes the deployment's plan (for reporting).
func (d *Deployment) Plan() *partition.Plan { return d.plan }

func modelNameOf(units []*partition.Unit) string {
	name := units[0].Sub.Name
	for i := 0; i < len(name); i++ {
		if name[i] == '[' {
			return name[:i]
		}
	}
	return name
}
