package runtime

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"gillis/internal/core"
	"gillis/internal/graph"
	"gillis/internal/models"
	"gillis/internal/nn"
	"gillis/internal/partition"
	"gillis/internal/perf"
	"gillis/internal/platform"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
)

// tinyCNN matches the partition package's test model: stem conv+bn+relu,
// maxpool, residual block, avgpool.
func tinyCNN(t *testing.T) []*partition.Unit {
	t.Helper()
	g := graph.New("tinycnn", []int{3, 24, 24})
	g.MustAdd(nn.NewConv2D("stem", 3, 8, 3, 1, 1))
	g.MustAdd(nn.NewBatchNorm("stem_bn", 8))
	g.MustAdd(nn.NewReLU("stem_relu"))
	pool := g.MustAdd(nn.NewMaxPool2D("pool", 3, 2, 1))
	c1 := g.MustAdd(nn.NewConv2D("b_conv1", 8, 8, 3, 1, 1), pool)
	b1 := g.MustAdd(nn.NewBatchNorm("b_bn1", 8), c1)
	r1 := g.MustAdd(nn.NewReLU("b_relu1"), b1)
	c2 := g.MustAdd(nn.NewConv2D("b_conv2", 8, 8, 3, 1, 1), r1)
	b2 := g.MustAdd(nn.NewBatchNorm("b_bn2", 8), c2)
	add := g.MustAdd(nn.NewAdd("b_add"), b2, pool)
	g.MustAdd(nn.NewReLU("b_relu2"), add)
	g.MustAdd(nn.NewAvgPool2D("avg", 2, 2))
	g.Init(42)
	units, err := partition.Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	return units
}

// mixedPlan exercises all three dims: spatial group (master+workers),
// channel group (workers only), whole-on-master group.
func mixedPlan(t *testing.T, units []*partition.Unit) *partition.Plan {
	t.Helper()
	plan := &partition.Plan{Model: "tinycnn", Groups: []partition.GroupPlan{
		{First: 0, Last: 0, Option: partition.Option{Dim: partition.DimChannel, Parts: 2}},
		{First: 1, Last: 2, Option: partition.Option{Dim: partition.DimSpatial, Parts: 3}, OnMaster: true},
		{First: 3, Last: 3, Option: partition.Option{Dim: partition.DimNone, Parts: 1}, OnMaster: true},
	}}
	if err := plan.Validate(units); err != nil {
		t.Fatal(err)
	}
	return plan
}

func runClient(t *testing.T, cfg platform.Config, seed int64, driver func(p *platform.Platform, proc *simnet.Proc)) {
	t.Helper()
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	env.Go("client", func(proc *simnet.Proc) { driver(p, proc) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestServeRealMatchesMonolithic(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	x := tensor.Rand(rand.New(rand.NewSource(7)), 1, 3, 24, 24)
	want, err := partition.ForwardChain(units, x)
	if err != nil {
		t.Fatal(err)
	}
	runClient(t, platform.AWSLambda(), 1, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := Deploy(p, units, plan, Real)
		if err != nil {
			t.Error(err)
			return
		}
		if err := d.Prewarm(); err != nil {
			t.Error(err)
			return
		}
		res, err := d.Serve(proc, x)
		if err != nil {
			t.Error(err)
			return
		}
		if !tensor.Equal(res.Output, want) {
			t.Error("fork-join output must match monolithic execution bitwise")
		}
		if res.LatencyMs <= 0 || res.BilledMs <= 0 {
			t.Errorf("bad accounting: %+v", res)
		}
		if res.ColdStart {
			t.Error("prewarmed master should warm-start")
		}
	})
}

func TestServeDefaultReal(t *testing.T) {
	units := tinyCNN(t)
	x := tensor.Rand(rand.New(rand.NewSource(8)), 1, 3, 24, 24)
	want, err := partition.ForwardChain(units, x)
	if err != nil {
		t.Fatal(err)
	}
	runClient(t, platform.KNIX(), 2, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := DeployDefault(p, units, Real)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := d.Serve(proc, x)
		if err != nil {
			t.Error(err)
			return
		}
		if !tensor.Equal(res.Output, want) {
			t.Error("default serving output mismatch")
		}
	})
}

func TestDeployRejectsOOM(t *testing.T) {
	g, err := models.WideResNet(34, 5)
	if err != nil {
		t.Fatal(err)
	}
	units, err := partition.Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	env := simnet.NewEnv()
	p := platform.New(env, platform.AWSLambda(), 1)
	if _, err := DeployDefault(p, units, ShapeOnly); err == nil {
		t.Fatal("WRN-34-5 must not fit a single 1.4 GB function")
	} else if !strings.Contains(err.Error(), "OOM") {
		t.Fatalf("error should mention OOM: %v", err)
	}
}

func TestDeployRejectsUninitializedReal(t *testing.T) {
	g, err := models.VGG(11)
	if err != nil {
		t.Fatal(err)
	}
	units, err := partition.Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	env := simnet.NewEnv()
	p := platform.New(env, platform.AWSLambda(), 1)
	if _, err := DeployDefault(p, units, Real); err == nil {
		t.Fatal("Real mode without weights must fail")
	}
}

var (
	perfOnce sync.Once
	perfMdl  *perf.Model
	perfErr  error
)

func lambdaModel(t *testing.T) *perf.Model {
	t.Helper()
	perfOnce.Do(func() { perfMdl, perfErr = perf.Build(platform.AWSLambda(), 1, 2, 300) })
	if perfErr != nil {
		t.Fatal(perfErr)
	}
	return perfMdl
}

func zooUnits(t *testing.T, name string) []*partition.Unit {
	t.Helper()
	g, err := models.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	units, err := partition.Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	return units
}

// Gillis (latency-optimal) must beat Default on the simulated platform, not
// just in the predictor — Fig. 9 measured end to end.
func TestGillisBeatsDefaultMeasured(t *testing.T) {
	m := lambdaModel(t)
	units := zooUnits(t, "vgg16")
	plan, _, err := core.LatencyOptimal(m, units, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var gillisMs, defaultMs float64
	runClient(t, platform.AWSLambda(), 3, func(p *platform.Platform, proc *simnet.Proc) {
		dg, err := Deploy(p, units, plan, ShapeOnly)
		if err != nil {
			t.Error(err)
			return
		}
		dd, err := DeployDefault(p, units, ShapeOnly)
		if err != nil {
			t.Error(err)
			return
		}
		if err := dg.Prewarm(); err != nil {
			t.Error(err)
			return
		}
		if err := dd.Prewarm(); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 20; i++ {
			rg, err := dg.Serve(proc, nil)
			if err != nil {
				t.Error(err)
				return
			}
			rd, err := dd.Serve(proc, nil)
			if err != nil {
				t.Error(err)
				return
			}
			gillisMs += rg.LatencyMs
			defaultMs += rd.LatencyMs
		}
	})
	speedup := defaultMs / gillisMs
	if speedup < 1.3 {
		t.Fatalf("measured VGG-16 speedup %.2f, want >= 1.3 (Fig. 9 reports ~1.9)", speedup)
	}
}

// Performance-model fidelity (Fig. 15 bottom): predicted end-to-end latency
// within ~10% of the measured mean.
func TestPredictionMatchesMeasurement(t *testing.T) {
	m := lambdaModel(t)
	for _, name := range []string{"vgg11", "resnet50"} {
		units := zooUnits(t, name)
		plan, pred, err := core.LatencyOptimal(m, units, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		const queries = 30
		runClient(t, platform.AWSLambda(), 4, func(p *platform.Platform, proc *simnet.Proc) {
			d, err := Deploy(p, units, plan, ShapeOnly)
			if err != nil {
				t.Error(err)
				return
			}
			if err := d.Prewarm(); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < queries; i++ {
				r, err := d.Serve(proc, nil)
				if err != nil {
					t.Error(err)
					return
				}
				total += r.LatencyMs
			}
		})
		mean := total / queries
		rel := (pred.LatencyMs - mean) / mean
		if rel < -0.12 || rel > 0.12 {
			t.Errorf("%s: predicted %.0f ms vs measured %.0f ms (%.1f%%)", name, pred.LatencyMs, mean, rel*100)
		}
	}
}

func TestPipelineRealCorrectAndBreakdown(t *testing.T) {
	units := tinyCNN(t)
	x := tensor.Rand(rand.New(rand.NewSource(9)), 1, 3, 24, 24)
	want, err := partition.ForwardChain(units, x)
	if err != nil {
		t.Fatal(err)
	}
	runClient(t, platform.AWSLambda(), 5, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := DeployPipeline(p, units, Real)
		if err != nil {
			t.Error(err)
			return
		}
		if err := d.Prewarm(); err != nil {
			t.Error(err)
			return
		}
		res, err := d.Serve(proc, x)
		if err != nil {
			t.Error(err)
			return
		}
		if !tensor.Equal(res.Output, want) {
			t.Error("pipeline output mismatch")
		}
		if res.LoadMs <= 0 || res.ComputeMs <= 0 {
			t.Errorf("breakdown missing: %+v", res)
		}
		if res.LatencyMs < res.LoadMs+res.ComputeMs-1 {
			t.Errorf("latency %.1f < load %.1f + compute %.1f", res.LatencyMs, res.LoadMs, res.ComputeMs)
		}
	})
}

func TestPipelineChunksLargeModel(t *testing.T) {
	units := zooUnits(t, "wrn34-5") // 2.1 GB of weights
	runClient(t, platform.AWSLambda(), 6, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := DeployPipeline(p, units, ShapeOnly)
		if err != nil {
			t.Error(err)
			return
		}
		if d.Chunks() < 2 {
			t.Errorf("WRN-34-5 pipeline should need >= 2 chunks, got %d", d.Chunks())
		}
		if err := d.Prewarm(); err != nil {
			t.Error(err)
			return
		}
		res, err := d.Serve(proc, nil)
		if err != nil {
			t.Error(err)
			return
		}
		// Fig. 11: network transfer dominates the pipeline's latency.
		if res.LoadMs < res.ComputeMs {
			t.Errorf("weight loading (%.0f ms) should dominate compute (%.0f ms)", res.LoadMs, res.ComputeMs)
		}
	})
}

func TestServeDeterministicReplay(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	run := func() []float64 {
		var out []float64
		runClient(t, platform.AWSLambda(), 77, func(p *platform.Platform, proc *simnet.Proc) {
			d, err := Deploy(p, units, plan, ShapeOnly)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 5; i++ {
				r, err := d.Serve(proc, nil)
				if err != nil {
					t.Error(err)
					return
				}
				out = append(out, r.LatencyMs)
			}
		})
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at query %d: %v vs %v", i, a[i], b[i])
		}
	}
	// First (cold) query should be slower than warm ones.
	if a[0] <= a[1] {
		t.Errorf("cold-start query (%.1f) should exceed warm (%.1f)", a[0], a[1])
	}
}

func TestResultBillingCoversWorkers(t *testing.T) {
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	runClient(t, platform.AWSLambda(), 10, func(p *platform.Platform, proc *simnet.Proc) {
		d, err := Deploy(p, units, plan, ShapeOnly)
		if err != nil {
			t.Error(err)
			return
		}
		if err := d.Prewarm(); err != nil {
			t.Error(err)
			return
		}
		res, err := d.Serve(proc, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if res.BilledMs < int64(res.LatencyMs) {
			t.Errorf("billed %d must at least cover the master's %f ms", res.BilledMs, res.LatencyMs)
		}
	})
}
