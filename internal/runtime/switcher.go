package runtime

import (
	"fmt"
	"sync"

	"gillis/internal/platform"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
	"gillis/internal/trace"
)

// Switcher serves queries through one of several co-deployed plans of the
// same model and hot-swaps the active plan between queries. All candidate
// deployments are registered up front on the same platform (registration
// does no RNG draws and costs no virtual time, so co-deploying candidates
// leaves a replay bit-identical to deploying only the active one); a swap
// is just an index change, taking effect at the next query. The adaptive
// controller drives Switch along its degradation ladder.
type Switcher struct {
	mu     sync.Mutex
	deps   []*Deployment
	active int
}

// NewSwitcher creates a switcher over one or more deployments of the same
// model on the same platform; the first is active.
func NewSwitcher(deps ...*Deployment) (*Switcher, error) {
	if len(deps) == 0 {
		return nil, fmt.Errorf("runtime: switcher needs at least one deployment")
	}
	for i, d := range deps[1:] {
		if d.p != deps[0].p {
			return nil, fmt.Errorf("runtime: switcher deployment %d is on a different platform", i+1)
		}
	}
	return &Switcher{deps: append([]*Deployment(nil), deps...)}, nil
}

// Add registers another candidate deployment (e.g. a freshly re-planned
// one) and returns its index. It does not activate it.
func (s *Switcher) Add(d *Deployment) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d.p != s.deps[0].p {
		return 0, fmt.Errorf("runtime: switcher add: deployment is on a different platform")
	}
	s.deps = append(s.deps, d)
	return len(s.deps) - 1, nil
}

// Len returns the number of candidate deployments.
func (s *Switcher) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.deps)
}

// Active returns the index of the deployment currently serving.
func (s *Switcher) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Deployment returns candidate i.
func (s *Switcher) Deployment(i int) (*Deployment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.deps) {
		return nil, fmt.Errorf("runtime: switcher has no deployment %d (have %d)", i, len(s.deps))
	}
	return s.deps[i], nil
}

// Switch makes candidate i the active deployment for subsequent queries.
// In-flight queries finish on the plan they started on.
func (s *Switcher) Switch(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.deps) {
		return fmt.Errorf("runtime: switch to unknown deployment %d (have %d)", i, len(s.deps))
	}
	s.active = i
	return nil
}

// current snapshots the active deployment.
func (s *Switcher) current() *Deployment {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deps[s.active]
}

// Platform returns the shared platform.
func (s *Switcher) Platform() *platform.Platform { return s.deps[0].p }

// Serve executes one query on the active deployment.
func (s *Switcher) Serve(proc *simnet.Proc, input *tensor.Tensor) (Result, error) {
	return s.current().Serve(proc, input)
}

// ServeTraced executes one traced query on the active deployment.
func (s *Switcher) ServeTraced(proc *simnet.Proc, input *tensor.Tensor) (Result, *trace.Trace, error) {
	return s.current().ServeTraced(proc, input)
}

// ServeBatch executes one batch on the active deployment.
func (s *Switcher) ServeBatch(proc *simnet.Proc, inputs []*tensor.Tensor, size int) (BatchResult, error) {
	return s.current().ServeBatch(proc, inputs, size)
}

// ServeBatchTraced executes one traced batch on the active deployment.
func (s *Switcher) ServeBatchTraced(proc *simnet.Proc, inputs []*tensor.Tensor, size int) (BatchResult, *trace.Trace, error) {
	return s.current().ServeBatchTraced(proc, inputs, size)
}

// WarmSets reports the active deployment's standing warm sets.
func (s *Switcher) WarmSets() int { return s.current().WarmSets() }

// Prewarm warms the active deployment's function set.
func (s *Switcher) Prewarm() error { return s.current().Prewarm() }

// SetHedging applies the hedging kill-switch to every candidate, so a
// brownout engaged on one plan persists across switches.
func (s *Switcher) SetHedging(enabled bool) {
	s.mu.Lock()
	deps := append([]*Deployment(nil), s.deps...)
	s.mu.Unlock()
	for _, d := range deps {
		d.SetHedging(enabled)
	}
}
