package runtime

import (
	"math/rand"
	"testing"

	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
)

func TestSwitcherValidation(t *testing.T) {
	if _, err := NewSwitcher(); err == nil {
		t.Fatal("empty switcher must be rejected")
	}
	units := tinyCNN(t)
	env := simnet.NewEnv()
	p1 := platform.New(env, platform.AWSLambda(), 1)
	p2 := platform.New(env, platform.AWSLambda(), 2)
	d1, err := DeployDefault(p1, units, ShapeOnly)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DeployDefault(p2, units, ShapeOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSwitcher(d1, d2); err == nil {
		t.Fatal("cross-platform switcher must be rejected")
	}
	sw, err := NewSwitcher(d1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Add(d2); err == nil {
		t.Fatal("cross-platform Add must be rejected")
	}
	if err := sw.Switch(3); err == nil {
		t.Fatal("out-of-range Switch must be rejected")
	}
	if _, err := sw.Deployment(-1); err == nil {
		t.Fatal("out-of-range Deployment must be rejected")
	}
	if sw.Platform() != p1 {
		t.Error("Platform must be the shared platform")
	}
}

func TestSwitcherHotSwapBitExact(t *testing.T) {
	// Every candidate serves the same model: outputs are bit-identical to
	// monolithic execution regardless of which plan is active, and a swap
	// takes effect on the next query.
	units := tinyCNN(t)
	plan := mixedPlan(t, units)
	x := tensor.Rand(rand.New(rand.NewSource(9)), 1, 3, 24, 24)
	want, err := partition.ForwardChain(units, x)
	if err != nil {
		t.Fatal(err)
	}
	runClient(t, platform.KNIX(), 3, func(p *platform.Platform, proc *simnet.Proc) {
		dDefault, err := DeployDefault(p, units, Real)
		if err != nil {
			t.Error(err)
			return
		}
		dPlan, err := Deploy(p, units, plan, Real)
		if err != nil {
			t.Error(err)
			return
		}
		sw, err := NewSwitcher(dDefault, dPlan)
		if err != nil {
			t.Error(err)
			return
		}
		if sw.Len() != 2 || sw.Active() != 0 {
			t.Errorf("len=%d active=%d, want 2,0", sw.Len(), sw.Active())
		}
		res, err := sw.Serve(proc, x)
		if err != nil {
			t.Error(err)
			return
		}
		if !tensor.Equal(res.Output, want) {
			t.Error("default-plan output mismatch")
		}
		if err := sw.Switch(1); err != nil {
			t.Error(err)
			return
		}
		if sw.Active() != 1 {
			t.Errorf("active=%d after switch, want 1", sw.Active())
		}
		res2, tr, err := sw.ServeTraced(proc, x)
		if err != nil {
			t.Error(err)
			return
		}
		if tr == nil {
			t.Error("ServeTraced must return a trace")
		}
		if !tensor.Equal(res2.Output, want) {
			t.Error("swapped-plan output mismatch")
		}
		// The swapped plan fans out, so it bills more functions.
		if res2.BilledMs <= 0 {
			t.Errorf("bad accounting after swap: %+v", res2)
		}
	})
}

func TestSwitcherPrewarmTargetsActive(t *testing.T) {
	units := tinyCNN(t)
	runClient(t, platform.AWSLambda(), 4, func(p *platform.Platform, proc *simnet.Proc) {
		d1, err := DeployDefault(p, units, ShapeOnly)
		if err != nil {
			t.Error(err)
			return
		}
		d2, err := DeployDefault(p, units, ShapeOnly)
		if err != nil {
			t.Error(err)
			return
		}
		sw, err := NewSwitcher(d1, d2)
		if err != nil {
			t.Error(err)
			return
		}
		if err := sw.Prewarm(); err != nil {
			t.Error(err)
			return
		}
		if d1.WarmSets() != 1 || d2.WarmSets() != 0 {
			t.Errorf("warm sets %d,%d after prewarming active, want 1,0", d1.WarmSets(), d2.WarmSets())
		}
		if err := sw.Switch(1); err != nil {
			t.Error(err)
			return
		}
		if sw.WarmSets() != 0 {
			t.Errorf("WarmSets must follow the active deployment, got %d", sw.WarmSets())
		}
	})
}

func TestSetHedgingSuppressesHedges(t *testing.T) {
	// With the kill-switch on, a deployment configured for hedging launches
	// no backups even on a straggler-heavy platform; re-enabling restores
	// them. Assert via per-query Resilience telemetry.
	units := tinyCNN(t)
	plan := &partition.Plan{Model: "tinycnn", Groups: []partition.GroupPlan{
		{First: 0, Last: len(units) - 1, Option: partition.Option{Dim: partition.DimSpatial, Parts: 2}},
	}}
	if err := plan.Validate(units); err != nil {
		t.Fatal(err)
	}
	cfg := platform.AWSLambda()
	cfg.Faults = platform.FaultProfile{StragglerProb: 0.45, StragglerFactor: 30}
	hedges := func(disableAfterWarmup bool) int {
		var total int
		runClient(t, cfg, 11, func(p *platform.Platform, proc *simnet.Proc) {
			d, err := Deploy(p, units, plan, ShapeOnly, WithHedging(70))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < minHedgeSamples+20; i++ {
				if disableAfterWarmup && i == minHedgeSamples {
					d.SetHedging(false)
				}
				res, err := d.Serve(proc, nil)
				if err != nil {
					continue
				}
				if i >= minHedgeSamples {
					total += res.Resilience.Hedges
				}
			}
		})
		return total
	}
	if on := hedges(false); on == 0 {
		t.Fatal("expected hedges on a straggler-heavy platform")
	}
	if off := hedges(true); off != 0 {
		t.Fatalf("SetHedging(false) must suppress hedges, got %d", off)
	}
}
