package runtime

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gillis/internal/core"
	"gillis/internal/graph"
	"gillis/internal/nn"
	"gillis/internal/par"
	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
	"gillis/internal/trace"
	"gillis/internal/trace/tracetest"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// quickstartUnits replicates examples/quickstart's demo CNN exactly (same op
// sequence, same weight seed), so the golden trace mirrors what a user sees.
func quickstartUnits(t *testing.T) []*partition.Unit {
	t.Helper()
	g := graph.New("demo-cnn", []int{3, 32, 32})
	g.MustAdd(nn.NewConv2D("stem", 3, 16, 3, 1, 1))
	g.MustAdd(nn.NewBatchNorm("stem_bn", 16))
	g.MustAdd(nn.NewReLU("stem_relu"))
	pool := g.MustAdd(nn.NewMaxPool2D("pool", 2, 2, 0))
	c1 := g.MustAdd(nn.NewConv2D("res_conv1", 16, 16, 3, 1, 1), pool)
	b1 := g.MustAdd(nn.NewBatchNorm("res_bn1", 16), c1)
	r1 := g.MustAdd(nn.NewReLU("res_relu1"), b1)
	c2 := g.MustAdd(nn.NewConv2D("res_conv2", 16, 16, 3, 1, 1), r1)
	b2 := g.MustAdd(nn.NewBatchNorm("res_bn2", 16), c2)
	add := g.MustAdd(nn.NewAdd("res_add"), b2, pool)
	g.MustAdd(nn.NewReLU("res_relu2"), add)
	g.MustAdd(nn.NewGlobalAvgPool("gap"))
	g.MustAdd(nn.NewDense("fc", 16, 10))
	g.MustAdd(nn.NewSoftmax("prob"))
	g.Init(1)
	units, err := partition.Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	return units
}

// quickstartPlan is the quickstart's explicitly parallel fork-join plan.
func quickstartPlan(t *testing.T, units []*partition.Unit) *partition.Plan {
	t.Helper()
	plan := &partition.Plan{Model: "demo-cnn", Groups: []partition.GroupPlan{
		{First: 0, Last: 0, Option: partition.Option{Dim: partition.DimChannel, Parts: 2}},
		{First: 1, Last: 2, Option: partition.Option{Dim: partition.DimSpatial, Parts: 3}, OnMaster: true},
		{First: 3, Last: 5, Option: partition.Option{Dim: partition.DimNone, Parts: 1}, OnMaster: true},
	}}
	if err := plan.Validate(units); err != nil {
		t.Fatal(err)
	}
	return plan
}

// serveTracedOnce runs exactly one traced query on a fresh prewarmed
// platform and drains the simulation, so the platform's BilledMsTotal is
// attributable to that single query's trace.
func serveTracedOnce(t *testing.T, cfg platform.Config, seed int64, units []*partition.Unit, plan *partition.Plan, mode ExecMode, input *tensor.Tensor, opts ...DeployOption) (Result, *trace.Trace, *platform.Platform, string, error) {
	t.Helper()
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	var (
		res    Result
		tr     *trace.Trace
		prefix string
		qerr   error
	)
	env.Go("client", func(proc *simnet.Proc) {
		d, err := Deploy(p, units, plan, mode, opts...)
		if err != nil {
			qerr = err
			return
		}
		prefix = d.Prefix()
		if err := d.Prewarm(); err != nil {
			qerr = err
			return
		}
		res, tr, qerr = d.ServeTraced(proc, input)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return res, tr, p, prefix, qerr
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run 'go test ./internal/runtime -run Golden -update'): %v", err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("trace diverged from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenQuickstartTrace pins the quickstart fork-join query's span tree
// byte-for-byte: same seeds must yield the identical serialized trace across
// runs and across kernel parallelism levels, and its billed-ms attribution
// must sum exactly to the platform's authoritative total.
func TestGoldenQuickstartTrace(t *testing.T) {
	units := quickstartUnits(t)
	plan := quickstartPlan(t, units)
	input := tensor.Rand(rand.New(rand.NewSource(2)), 1, 3, 32, 32)

	type run struct {
		canon, structure []byte
		tr               *trace.Trace
		p                *platform.Platform
		res              Result
	}
	serve := func(kernelWorkers int, opts ...DeployOption) run {
		restore := par.SetParallelism(kernelWorkers)
		defer restore()
		res, tr, p, prefix, err := serveTracedOnce(t, platform.AWSLambda(), 7, units, plan, Real, input, opts...)
		if err != nil {
			t.Fatal(err)
		}
		// The deployment counter is process-global, so function names carry a
		// test-order-dependent sequence number; strip it for stable goldens.
		ren := func(s string) string { return strings.ReplaceAll(s, prefix, "demo-cnn") }
		return run{canon: tr.Canonical(ren), structure: tr.Structure(ren), tr: tr, p: p, res: res}
	}

	base := serve(1)
	tracetest.CheckWellFormed(t, base.tr)
	tracetest.CheckBilledAttribution(t, base.tr)
	tracetest.CheckBilledTotal(t, base.tr, base.p.BilledMsTotal())
	if base.res.BilledMs != base.p.BilledMsTotal() {
		t.Errorf("query billed %d ms, platform total %d ms", base.res.BilledMs, base.p.BilledMsTotal())
	}
	digest := base.tr.Root().Attr("output-digest")
	if digest == "" {
		t.Error("Real-mode trace root must carry the output digest")
	}
	if n := len(tracetest.ByKind(base.tr, trace.KindInvoke)); n != 5 {
		// master + 2 channel workers + 2 spatial workers (part 0 on master).
		t.Errorf("invoke spans = %d, want 5", n)
	}
	if tracetest.CountEvents(base.tr, "op:res_conv1") != 3 {
		// Once per spatial worker (×2) plus the master's own partition 0.
		t.Errorf("op:res_conv1 events = %d, want 3", tracetest.CountEvents(base.tr, "op:res_conv1"))
	}

	checkGolden(t, filepath.Join("testdata", "quickstart_trace.golden"), base.canon)

	// Kernel parallelism is a wall-clock knob: the simulated trace — spans,
	// events, virtual timings, billing, and the output digest — must not move.
	for _, workers := range []int{2, 4} {
		r := serve(workers)
		if !bytes.Equal(r.canon, base.canon) {
			t.Errorf("trace differs at kernel parallelism %d\n--- got ---\n%s\n--- base ---\n%s", workers, r.canon, base.canon)
		}
		if got := r.tr.Root().Attr("output-digest"); got != digest {
			t.Errorf("output digest at parallelism %d = %s, want %s", workers, got, digest)
		}
	}

	// Modeled vCPUs (WithParallelism) rescale simulated compute time, so the
	// canonical trace legitimately shifts — but its structure (spans, events,
	// parentage) must be identical.
	vcpu := serve(1, WithParallelism(2))
	if !bytes.Equal(vcpu.structure, base.structure) {
		t.Errorf("WithParallelism(2) changed trace structure\n--- got ---\n%s\n--- base ---\n%s", vcpu.structure, base.structure)
	}
	if got := vcpu.tr.Root().Attr("output-digest"); got != digest {
		t.Errorf("WithParallelism(2) digest = %s, want %s", got, digest)
	}
}

// TestResNetFaultedTraceAcceptance is the PR's acceptance scenario: a seeded
// ResNet fork-join query with fault injection produces a Chrome-loadable
// trace whose per-span billed-ms sums exactly to the platform's total, and
// the serialized trace is byte-stable across runs and parallelism levels.
func TestResNetFaultedTraceAcceptance(t *testing.T) {
	m := lambdaModel(t)
	units := zooUnits(t, "resnet34")
	plan, _, err := core.LatencyOptimal(m, units, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := platform.AWSLambda()
	cfg.Faults = platform.FaultProfile{FailureProb: 0.1, StragglerProb: 0.1, StragglerFactor: 4, EvictionProb: 0.05}
	opts := []DeployOption{WithRetries(3, 25), WithMasterFallback()}

	serve := func(kernelWorkers int) ([]byte, []byte, *trace.Trace, *platform.Platform) {
		restore := par.SetParallelism(kernelWorkers)
		defer restore()
		_, tr, p, prefix, err := serveTracedOnce(t, cfg, 97, units, plan, ShapeOnly, nil, opts...)
		if err != nil {
			t.Fatalf("query failed despite retries: %v", err)
		}
		ren := func(s string) string { return strings.ReplaceAll(s, prefix, "resnet34") }
		return tr.Canonical(ren), tr.ChromeJSON(ren), tr, p
	}

	canon, chrome, tr, p := serve(1)
	tracetest.CheckWellFormed(t, tr)
	tracetest.CheckBilledTotal(t, tr, p.BilledMsTotal())
	failed := tracetest.CheckFaultKinds(t, tr)
	tracetest.CheckHedges(t, tr)

	if n := len(tracetest.ByKind(tr, trace.KindInvoke)); n < 2 {
		t.Fatalf("plan produced %d invocations; acceptance needs a fork-join query (master + workers)", n)
	}
	if failed == 0 {
		t.Fatal("no faulted invocation in the trace; pick a seed that exercises fault injection")
	}

	var events []map[string]any
	if err := json.Unmarshal(chrome, &events); err != nil {
		t.Fatalf("ChromeJSON not valid JSON: %v", err)
	}
	if len(events) < 10 {
		t.Fatalf("suspiciously small chrome trace: %d events", len(events))
	}

	// Byte-stability: identical run, then identical under different kernel
	// parallelism (ShapeOnly runs no kernels; the knob must not leak in).
	for _, workers := range []int{1, 2, 4} {
		c2, j2, _, _ := serve(workers)
		if !bytes.Equal(c2, canon) {
			t.Errorf("canonical trace not reproducible at kernel parallelism %d", workers)
		}
		if !bytes.Equal(j2, chrome) {
			t.Errorf("chrome trace not reproducible at kernel parallelism %d", workers)
		}
	}
}

// TestTraceInvariantsUnderFaultSweep is the property test: across 100 seeds
// and mixed fault profiles, every trace stays well-formed, every failed
// invocation span carries its typed fault kind, and per-span billed-ms sums
// exactly to the platform's authoritative total — whether or not the query
// survived.
func TestTraceInvariantsUnderFaultSweep(t *testing.T) {
	units := tinyCNN(t)
	plan := resilPlan(t, units)
	profiles := []platform.FaultProfile{
		{FailureProb: 0.2},
		{FailureProb: 0.1, EvictionProb: 0.1},
		{FailureProb: 0.05, StragglerProb: 0.2, StragglerFactor: 8, TimeoutMs: 150},
	}
	var failedSpans, failedQueries int
	for seed := int64(0); seed < 100; seed++ {
		prof := profiles[seed%int64(len(profiles))]
		cfg := platform.AWSLambda()
		cfg.Faults = prof
		_, tr, p, _, err := serveTracedOnce(t, cfg, seed, units, plan, ShapeOnly, nil,
			WithRetries(3, 2), WithMasterFallback())
		if err != nil {
			failedQueries++
		}
		tracetest.CheckWellFormed(t, tr)
		failedSpans += tracetest.CheckFaultKinds(t, tr)
		tracetest.CheckBilledTotal(t, tr, p.BilledMsTotal())
		tracetest.CheckHedges(t, tr)
		if t.Failed() {
			t.Fatalf("trace invariant violated at seed %d (profile %+v)", seed, prof)
		}
	}
	if failedSpans == 0 {
		t.Fatal("sweep observed no faulted invocations; fault injection inactive")
	}
	t.Logf("100 seeds: %d faulted invocation spans, %d failed queries, all invariants held", failedSpans, failedQueries)
}
