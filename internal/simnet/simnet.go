// Package simnet is a deterministic discrete-event simulation kernel in the
// style of SimPy: processes are goroutines that park on a virtual clock, and
// a central scheduler advances time from event to event. At most one process
// executes at any instant, and ties are broken by event sequence number, so
// a simulation is exactly reproducible for a fixed seed of its random
// inputs.
//
// The serverless platform simulator (package platform) and the fork-join
// serving runtime (package runtime) are built on this kernel.
package simnet

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Env is a simulation environment: a virtual clock plus an event queue.
type Env struct {
	mu       sync.Mutex
	cond     *sync.Cond
	now      time.Duration
	events   eventHeap
	seq      int64
	stampSeq int64
	runnable int // processes currently executing (not parked)
	parked   int // processes parked on promises (not on the clock)
	started  bool
}

type event struct {
	at  time.Duration
	seq int64
	fn  func() // runs in scheduler context with env.mu held; must not block
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// NewEnv creates an empty simulation environment.
func NewEnv() *Env {
	e := &Env{}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Stamp returns the current virtual time together with a monotonically
// increasing sequence number that totally orders stamps taken at the same
// instant. Because at most one process executes at any instant, the
// sequence is deterministic for a fixed simulation; the tracing subsystem
// uses it to order same-time span boundaries reproducibly.
func (e *Env) Stamp() (time.Duration, int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stampSeq++
	return e.now, e.stampSeq
}

// Proc is the handle a running process uses to interact with the clock.
type Proc struct {
	env    *Env
	Name   string
	resume chan struct{}
}

// Env returns the process's environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.Now() }

// Go schedules fn as a new process starting at the current virtual time.
// It can be called before Run or from within a running process.
func (e *Env) Go(name string, fn func(*Proc)) {
	p := &Proc{env: e, Name: name, resume: make(chan struct{}, 1)}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pushLocked(e.now, func() {
		e.runnable++
		//gillis:allow goleak process goroutines are joined by the scheduler: Run blocks on the runnable count under e.cond until every spawned process has decremented it
		go func() {
			fn(p)
			e.mu.Lock()
			//gillis:allow sharedmut runnable is a scheduler counter guarded by e.mu; decrement order is irrelevant to the virtual-time semantics
			e.runnable--
			e.cond.Broadcast()
			e.mu.Unlock()
		}()
	})
}

// At schedules fn to run in scheduler context at the given absolute virtual
// time (which must not be in the past). fn must not block.
func (e *Env) At(t time.Duration, fn func()) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if t < e.now {
		return fmt.Errorf("simnet: cannot schedule at %v, now is %v", t, e.now)
	}
	e.pushLocked(t, fn)
	return nil
}

func (e *Env) pushLocked(t time.Duration, fn func()) {
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
	e.cond.Broadcast()
}

// Sleep parks the process for d of virtual time. Negative durations are
// treated as zero.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e := p.env
	e.mu.Lock()
	e.pushLocked(e.now+d, func() {
		e.runnable++
		p.resume <- struct{}{}
	})
	e.runnable--
	e.cond.Broadcast()
	e.mu.Unlock()
	<-p.resume
}

// Run executes the simulation until no events remain. It returns an error if
// processes remain parked on unresolved promises when the event queue drains
// (a deadlock).
func (e *Env) Run() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return fmt.Errorf("simnet: Run called twice")
	}
	e.started = true
	for {
		for e.runnable > 0 {
			e.cond.Wait()
		}
		if len(e.events) == 0 {
			if e.parked > 0 {
				return fmt.Errorf("simnet: deadlock: %d process(es) parked on unresolved promises", e.parked)
			}
			return nil
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
}

// Promise is a single-assignment value processes can wait on.
type Promise[T any] struct {
	env      *Env
	mu       sync.Mutex
	resolved bool
	value    T
	err      error
	waiters  []func() // scheduled as zero-delay events on resolution
}

// NewPromise creates an unresolved promise in the environment.
func NewPromise[T any](env *Env) *Promise[T] {
	return &Promise[T]{env: env}
}

// Resolve fulfills the promise and wakes all waiters at the current virtual
// time. Resolving twice panics: it indicates a protocol bug.
func (pr *Promise[T]) Resolve(v T) {
	if !pr.tryComplete(v, nil) {
		panic("simnet: promise resolved twice")
	}
}

// Fail completes the promise with an error.
func (pr *Promise[T]) Fail(err error) {
	var zero T
	if !pr.tryComplete(zero, err) {
		panic("simnet: promise resolved twice")
	}
}

// TryResolve fulfills the promise if it has not completed yet, reporting
// whether this call won. Use it for first-wins races (e.g. hedged requests)
// where several processes may legitimately attempt to complete the same
// promise.
func (pr *Promise[T]) TryResolve(v T) bool { return pr.tryComplete(v, nil) }

// TryFail completes the promise with an error if it has not completed yet,
// reporting whether this call won.
func (pr *Promise[T]) TryFail(err error) bool {
	var zero T
	return pr.tryComplete(zero, err)
}

func (pr *Promise[T]) tryComplete(v T, err error) bool {
	pr.mu.Lock()
	if pr.resolved {
		pr.mu.Unlock()
		return false
	}
	pr.resolved = true
	pr.value, pr.err = v, err
	waiters := pr.waiters
	pr.waiters = nil
	pr.mu.Unlock()

	pr.env.mu.Lock()
	for _, w := range waiters {
		pr.env.pushLocked(pr.env.now, w)
	}
	pr.env.mu.Unlock()
	return true
}

// Poll reports, without blocking, whether the promise has completed, and
// returns its value and error when it has.
func (pr *Promise[T]) Poll() (v T, err error, ok bool) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.value, pr.err, pr.resolved
}

// Wait parks the process until the promise resolves and returns its value.
func (pr *Promise[T]) Wait(p *Proc) (T, error) {
	pr.mu.Lock()
	if pr.resolved {
		v, err := pr.value, pr.err
		pr.mu.Unlock()
		return v, err
	}
	e := pr.env
	// The waiter runs in scheduler context with e.mu already held.
	pr.waiters = append(pr.waiters, func() {
		e.runnable++
		e.parked--
		p.resume <- struct{}{}
	})
	pr.mu.Unlock()

	e.mu.Lock()
	e.runnable--
	e.parked++
	e.cond.Broadcast()
	e.mu.Unlock()
	<-p.resume
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.value, pr.err
}

// ErrTimeout is returned by WaitTimeout when the deadline elapses before the
// promise completes.
var ErrTimeout = errors.New("simnet: wait deadline exceeded")

// WaitTimeout parks the process until the promise completes or d of virtual
// time elapses, whichever comes first. On completion it behaves like Wait;
// on timeout it returns ErrTimeout. The promise itself is unaffected — it
// may still complete later, and other waiters (or a later Wait) observe its
// value as usual. A non-positive d times out immediately unless the promise
// has already completed. The platform's function-execution timeout and the
// serving runtime's per-invocation deadlines build on this primitive.
func (pr *Promise[T]) WaitTimeout(p *Proc, d time.Duration) (T, error) {
	pr.mu.Lock()
	if pr.resolved {
		v, err := pr.value, pr.err
		pr.mu.Unlock()
		return v, err
	}
	var zero T
	if d <= 0 {
		pr.mu.Unlock()
		return zero, ErrTimeout
	}
	e := pr.env
	// Both the completion waiter and the timer event run in scheduler
	// context; the CAS picks the single winner that resumes the process.
	// The loser's callback becomes a no-op.
	var fired atomic.Bool
	wake := func() {
		if fired.CompareAndSwap(false, true) {
			e.runnable++
			e.parked--
			p.resume <- struct{}{}
		}
	}
	pr.waiters = append(pr.waiters, wake)
	pr.mu.Unlock()

	e.mu.Lock()
	e.pushLocked(e.now+d, wake)
	e.runnable--
	e.parked++
	e.cond.Broadcast()
	e.mu.Unlock()
	<-p.resume

	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.resolved {
		return pr.value, pr.err
	}
	return zero, ErrTimeout
}

// Resource is a FIFO-ordered exclusive resource (capacity 1), used to model
// serialized links such as a function's network uplink.
type Resource struct {
	env   *Env
	mu    sync.Mutex
	busy  bool
	queue []*Promise[struct{}]
}

// NewResource creates an idle resource.
func NewResource(env *Env) *Resource { return &Resource{env: env} }

// Acquire parks the process until it holds the resource.
func (r *Resource) Acquire(p *Proc) {
	r.mu.Lock()
	if !r.busy {
		r.busy = true
		r.mu.Unlock()
		return
	}
	pr := NewPromise[struct{}](r.env)
	r.queue = append(r.queue, pr)
	r.mu.Unlock()
	_, _ = pr.Wait(p) // promise is never failed
}

// Release hands the resource to the next waiter, if any.
func (r *Resource) Release() {
	r.mu.Lock()
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		r.mu.Unlock()
		next.Resolve(struct{}{})
		return
	}
	r.busy = false
	r.mu.Unlock()
}
