package simnet

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv()
	var end time.Duration
	env.Go("p", func(p *Proc) {
		p.Sleep(ms(10))
		p.Sleep(ms(5))
		end = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if end != ms(15) {
		t.Fatalf("clock at %v, want 15ms", end)
	}
}

func TestZeroAndNegativeSleep(t *testing.T) {
	env := NewEnv()
	var ok bool
	env.Go("p", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-ms(5))
		ok = p.Now() == 0
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("zero/negative sleeps must not advance time")
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		env := NewEnv()
		var order []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			env.Go(name, func(p *Proc) {
				p.Sleep(ms(10)) // all wake at the same instant
				order = append(order, name)
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for i := 0; i < 10; i++ {
		got := run()
		for j := range first {
			if got[j] != first[j] {
				t.Fatalf("nondeterministic order: %v vs %v", got, first)
			}
		}
	}
	// Ties break by spawn order.
	if first[0] != "a" || first[1] != "b" || first[2] != "c" {
		t.Fatalf("tie-break order wrong: %v", first)
	}
}

func TestPromiseForkJoin(t *testing.T) {
	env := NewEnv()
	var joined time.Duration
	env.Go("master", func(p *Proc) {
		var promises []*Promise[int]
		for i, d := range []int{30, 10, 20} {
			i, d := i, d
			pr := NewPromise[int](env)
			promises = append(promises, pr)
			env.Go("worker", func(w *Proc) {
				w.Sleep(ms(d))
				pr.Resolve(i)
			})
		}
		sum := 0
		for _, pr := range promises {
			v, err := pr.Wait(p)
			if err != nil {
				t.Error(err)
			}
			sum += v
		}
		if sum != 3 {
			t.Errorf("sum %d", sum)
		}
		joined = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if joined != ms(30) {
		t.Fatalf("join at %v, want max worker time 30ms", joined)
	}
}

func TestPromiseWaitAfterResolve(t *testing.T) {
	env := NewEnv()
	pr := NewPromise[string](env)
	var got string
	env.Go("a", func(p *Proc) { pr.Resolve("x") })
	env.Go("b", func(p *Proc) {
		p.Sleep(ms(1))
		got, _ = pr.Wait(p) // already resolved: returns immediately
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "x" {
		t.Fatalf("got %q", got)
	}
}

func TestPromiseFail(t *testing.T) {
	env := NewEnv()
	pr := NewPromise[int](env)
	var err error
	env.Go("a", func(p *Proc) { pr.Fail(errTest) })
	env.Go("b", func(p *Proc) { _, err = pr.Wait(p) })
	if rerr := env.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if err != errTest {
		t.Fatalf("got %v", err)
	}
}

func TestPromiseFailWakesAllWaiters(t *testing.T) {
	env := NewEnv()
	pr := NewPromise[int](env)
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		i := i
		env.Go("waiter", func(p *Proc) { _, errs[i] = pr.Wait(p) })
	}
	env.Go("failer", func(p *Proc) {
		p.Sleep(ms(5))
		pr.Fail(errTest)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if err != errTest {
			t.Fatalf("waiter %d got %v, want errTest", i, err)
		}
	}
	// A late Wait on a failed promise returns the error immediately.
	env2 := NewEnv()
	pr2 := NewPromise[int](env2)
	pr2.Fail(errTest)
	var late error
	env2.Go("late", func(p *Proc) { _, late = pr2.Wait(p) })
	if err := env2.Run(); err != nil {
		t.Fatal(err)
	}
	if late != errTest {
		t.Fatalf("late waiter got %v", late)
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	env := NewEnv()
	pr := NewPromise[int](env)
	var (
		err error
		at  time.Duration
	)
	env.Go("waiter", func(p *Proc) {
		_, err = pr.WaitTimeout(p, ms(10))
		at = p.Now()
	})
	env.Go("slow", func(p *Proc) {
		p.Sleep(ms(50))
		pr.Resolve(1)
	})
	if rerr := env.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if err != ErrTimeout {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if at != ms(10) {
		t.Fatalf("timed out at %v, want 10ms", at)
	}
}

func TestWaitTimeoutResolvesFirst(t *testing.T) {
	env := NewEnv()
	pr := NewPromise[int](env)
	var (
		v   int
		err error
		at  time.Duration
	)
	env.Go("waiter", func(p *Proc) {
		v, err = pr.WaitTimeout(p, ms(100))
		at = p.Now()
	})
	env.Go("fast", func(p *Proc) {
		p.Sleep(ms(5))
		pr.Resolve(7)
	})
	if rerr := env.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if err != nil || v != 7 {
		t.Fatalf("got (%d, %v)", v, err)
	}
	if at != ms(5) {
		t.Fatalf("woke at %v, want 5ms", at)
	}
}

func TestWaitTimeoutFailureFirst(t *testing.T) {
	env := NewEnv()
	pr := NewPromise[int](env)
	var err error
	env.Go("waiter", func(p *Proc) { _, err = pr.WaitTimeout(p, ms(100)) })
	env.Go("failer", func(p *Proc) {
		p.Sleep(ms(2))
		pr.Fail(errTest)
	})
	if rerr := env.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if err != errTest {
		t.Fatalf("got %v, want errTest (promise failure, not timeout)", err)
	}
}

func TestWaitTimeoutAlreadyResolved(t *testing.T) {
	env := NewEnv()
	pr := NewPromise[string](env)
	pr.Resolve("done")
	var (
		v   string
		err error
	)
	env.Go("waiter", func(p *Proc) { v, err = pr.WaitTimeout(p, ms(1)) })
	if rerr := env.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if v != "done" || err != nil {
		t.Fatalf("got (%q, %v)", v, err)
	}
}

func TestWaitTimeoutNonPositive(t *testing.T) {
	env := NewEnv()
	pr := NewPromise[int](env)
	var err error
	env.Go("waiter", func(p *Proc) { _, err = pr.WaitTimeout(p, 0) })
	env.Go("resolver", func(p *Proc) {
		p.Sleep(ms(1))
		pr.Resolve(1) // after the zero-deadline waiter already gave up
	})
	if rerr := env.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if err != ErrTimeout {
		t.Fatalf("got %v, want immediate ErrTimeout", err)
	}
}

// After a timed-out wait, the promise still completes normally for other
// waiters, and a plain Wait sees the value.
func TestWaitTimeoutDoesNotConsumePromise(t *testing.T) {
	env := NewEnv()
	pr := NewPromise[int](env)
	var first error
	var second int
	env.Go("impatient", func(p *Proc) {
		_, first = pr.WaitTimeout(p, ms(1))
		second, _ = pr.Wait(p) // now wait for real
	})
	env.Go("slow", func(p *Proc) {
		p.Sleep(ms(20))
		pr.Resolve(9)
	})
	if rerr := env.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if first != ErrTimeout || second != 9 {
		t.Fatalf("got (%v, %d)", first, second)
	}
}

func TestTryResolveFirstWins(t *testing.T) {
	env := NewEnv()
	pr := NewPromise[int](env)
	var wins [2]bool
	for i, d := range []int{5, 10} {
		i, d := i, d
		env.Go("racer", func(p *Proc) {
			p.Sleep(ms(d))
			wins[i] = pr.TryResolve(i)
		})
	}
	var got int
	env.Go("waiter", func(p *Proc) { got, _ = pr.Wait(p) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !wins[0] || wins[1] {
		t.Fatalf("wins %v, want first-only", wins)
	}
	if got != 0 {
		t.Fatalf("value %d, want the first racer's", got)
	}
	if pr.TryFail(errTest) {
		t.Fatal("TryFail after completion must lose")
	}
}

func TestPollNonBlocking(t *testing.T) {
	env := NewEnv()
	pr := NewPromise[int](env)
	if _, _, ok := pr.Poll(); ok {
		t.Fatal("unresolved promise must poll not-ok")
	}
	pr.Resolve(3)
	v, err, ok := pr.Poll()
	if !ok || v != 3 || err != nil {
		t.Fatalf("got (%d, %v, %v)", v, err, ok)
	}
}

var errTest = errString("boom")

type errString string

func (e errString) Error() string { return string(e) }

func TestDoubleResolvePanics(t *testing.T) {
	env := NewEnv()
	env.Go("a", func(p *Proc) {
		pr := NewPromise[int](env)
		pr.Resolve(1)
		defer func() {
			if recover() == nil {
				t.Error("expected panic on double resolve")
			}
		}()
		pr.Resolve(2)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	env := NewEnv()
	pr := NewPromise[int](env)
	env.Go("stuck", func(p *Proc) { _, _ = pr.Wait(p) })
	if err := env.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
	pr.Resolve(0) // release the leaked goroutine
}

func TestRunTwiceFails(t *testing.T) {
	env := NewEnv()
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err == nil {
		t.Fatal("expected second Run to fail")
	}
}

func TestAtSchedulesCallback(t *testing.T) {
	env := NewEnv()
	var at time.Duration
	if err := env.At(ms(7), func() { at = env.now }); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if at != ms(7) {
		t.Fatalf("callback at %v", at)
	}
	if err := env.At(ms(1), func() {}); err == nil {
		t.Fatal("expected past-time error")
	}
}

func TestResourceFIFOSerialization(t *testing.T) {
	env := NewEnv()
	res := NewResource(env)
	var order []int
	var times []time.Duration
	for i := 0; i < 3; i++ {
		i := i
		env.Go("user", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond) // stagger arrivals
			res.Acquire(p)
			p.Sleep(ms(10))
			order = append(order, i)
			times = append(times, p.Now())
			res.Release()
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("FIFO violated: %v", order)
	}
	if times[2] < ms(30) {
		t.Fatalf("resource not serialized: finish times %v", times)
	}
}

func TestNestedSpawn(t *testing.T) {
	env := NewEnv()
	depth := 0
	var spawn func(p *Proc, d int)
	spawn = func(p *Proc, d int) {
		if d > depth {
			depth = d
		}
		if d >= 5 {
			return
		}
		pr := NewPromise[struct{}](env)
		env.Go("child", func(c *Proc) {
			c.Sleep(ms(1))
			spawn(c, d+1)
			pr.Resolve(struct{}{})
		})
		_, _ = pr.Wait(p)
	}
	env.Go("root", func(p *Proc) { spawn(p, 0) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if depth != 5 {
		t.Fatalf("depth %d", depth)
	}
}
