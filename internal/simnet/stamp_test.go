package simnet

import (
	"testing"
	"time"
)

func TestStampOrdersSameInstant(t *testing.T) {
	env := NewEnv()
	type stamp struct {
		at  time.Duration
		seq int64
	}
	var got []stamp
	env.Go("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			now, seq := env.Stamp()
			got = append(got, stamp{now, seq})
		}
		p.Sleep(time.Millisecond)
		now, seq := env.Stamp()
		got = append(got, stamp{now, seq})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d stamps", len(got))
	}
	for i := 0; i < 3; i++ {
		if got[i].at != 0 {
			t.Errorf("stamp %d at %v, want 0", i, got[i].at)
		}
	}
	if got[3].at != time.Millisecond {
		t.Errorf("stamp 3 at %v, want 1ms", got[3].at)
	}
	for i := 1; i < len(got); i++ {
		if got[i].seq <= got[i-1].seq {
			t.Fatalf("sequence numbers must strictly increase: %v", got)
		}
	}
}
