package stats

import (
	"math/rand"
	"testing"
)

func BenchmarkEMGExpectedMax16(b *testing.B) {
	e := EMG{Mu: 12, Sigma: 3, Lambda: 0.125}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.ExpectedMax(16)
	}
}

func BenchmarkEMGSample(b *testing.B) {
	e := EMG{Mu: 12, Sigma: 3, Lambda: 0.125}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Sample(rng)
	}
}

func BenchmarkFitLinear(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a, c := rng.Float64(), rng.Float64()
		x = append(x, []float64{1, a, c})
		y = append(y, 2+3*a-c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitLinear(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
