package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// EMG is an exponentially modified Gaussian distribution: the sum of a
// Normal(Mu, Sigma²) and an Exponential(Lambda) random variable. The Gillis
// paper observes that serverless function communication delays on AWS
// Lambda follow this distribution (§IV-A); its n-th order statistics
// predict the maximum delay of n concurrent master→worker invocations.
type EMG struct {
	Mu     float64 // Gaussian mean
	Sigma  float64 // Gaussian standard deviation (> 0)
	Lambda float64 // exponential rate (> 0)
}

// Validate reports whether the parameters define a proper distribution.
func (e EMG) Validate() error {
	if !(e.Sigma > 0) || !(e.Lambda > 0) || math.IsNaN(e.Mu) {
		return fmt.Errorf("stats: invalid EMG parameters %+v", e)
	}
	return nil
}

// Mean returns the distribution mean.
func (e EMG) Mean() float64 { return e.Mu + 1/e.Lambda }

// Variance returns the distribution variance.
func (e EMG) Variance() float64 { return e.Sigma*e.Sigma + 1/(e.Lambda*e.Lambda) }

// Sample draws one value using rng.
func (e EMG) Sample(rng *rand.Rand) float64 {
	return e.Mu + e.Sigma*rng.NormFloat64() + rng.ExpFloat64()/e.Lambda
}

// stdNormCDF is Φ(z).
func stdNormCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// CDF returns P(X <= x).
func (e EMG) CDF(x float64) float64 {
	u := (x - e.Mu) / e.Sigma
	v := e.Lambda * e.Sigma
	// F(x) = Φ(u) - exp(v²/2 - λ(x-μ)) Φ(u - v), evaluated carefully: the
	// exponent can be large positive while Φ(u-v) underflows, so combine in
	// log space when Φ(u-v) is tiny.
	expo := v*v/2 - e.Lambda*(x-e.Mu)
	phiShift := stdNormCDF(u - v)
	var corr float64
	if phiShift > 0 {
		l := expo + math.Log(phiShift)
		if l < -745 {
			corr = 0
		} else if l > 700 {
			corr = math.MaxFloat64 // clipped below
		} else {
			corr = math.Exp(l)
		}
	}
	f := stdNormCDF(u) - corr
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f
}

// Quantile returns the p-quantile (0 < p < 1) by bisection on the CDF.
func (e EMG) Quantile(p float64) float64 {
	if p <= 0 {
		p = 1e-12
	}
	if p >= 1 {
		p = 1 - 1e-12
	}
	lo := e.Mu - 12*e.Sigma
	hi := e.Mu + 12*e.Sigma + 40/e.Lambda
	for e.CDF(lo) > p {
		lo -= 10 * e.Sigma
	}
	for e.CDF(hi) < p {
		hi += 20 / e.Lambda
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if e.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ExpectedMax returns E[max of n i.i.d. draws], the n-th order statistic
// mean, computed by numerically integrating the quantile function:
// E[max_n] = ∫₀¹ Q(t^(1/n)) dt.
func (e EMG) ExpectedMax(n int) float64 {
	if n <= 1 {
		return e.Mean()
	}
	const steps = 512
	inv := 1 / float64(n)
	f := func(t float64) float64 { return e.Quantile(math.Pow(t, inv)) }
	// Composite Simpson on [eps, 1-eps].
	const eps = 1e-9
	a, b := eps, 1-eps
	h := (b - a) / steps
	sum := f(a) + f(b)
	for i := 1; i < steps; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// FitEMG estimates EMG parameters from samples by the method of moments.
// At least 8 samples are required.
func FitEMG(samples []float64) (EMG, error) {
	if len(samples) < 8 {
		return EMG{}, fmt.Errorf("stats: need >= 8 samples to fit EMG, got %d", len(samples))
	}
	m := Mean(samples)
	s := Std(samples)
	if s <= 0 {
		return EMG{}, fmt.Errorf("stats: degenerate samples (zero variance)")
	}
	g := Skewness(samples)
	// EMG skewness lies in (0, 2); clamp so the moment inversion stays real.
	if g < 1e-3 {
		g = 1e-3
	}
	if g > 1.95 {
		g = 1.95
	}
	c := math.Pow(g/2, 1.0/3.0)
	tau := s * c
	sigma2 := s * s * (1 - c*c)
	if sigma2 < 1e-12 {
		sigma2 = 1e-12
	}
	fit := EMG{Mu: m - tau, Sigma: math.Sqrt(sigma2), Lambda: 1 / tau}
	return fit, fit.Validate()
}
