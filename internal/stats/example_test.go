package stats_test

import (
	"fmt"

	"gillis/internal/stats"
)

// ExampleEMG_ExpectedMax shows the n-th order statistic the performance
// model uses to predict the slowest of n concurrent worker invocations
// (§IV-A): the expected maximum grows with the fan-out.
func ExampleEMG_ExpectedMax() {
	overhead := stats.EMG{Mu: 12, Sigma: 3, Lambda: 0.125} // ms, Lambda-like
	fmt.Printf("mean: %.0f ms\n", overhead.Mean())
	for _, n := range []int{4, 16} {
		fmt.Printf("E[max of %2d]: %.0f ms\n", n, overhead.ExpectedMax(n))
	}
	// Output:
	// mean: 20 ms
	// E[max of  4]: 29 ms
	// E[max of 16]: 40 ms
}
