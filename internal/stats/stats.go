// Package stats provides the statistical machinery behind Gillis's
// performance model (§IV-A of the paper): descriptive statistics, linear
// least-squares regression for layer-runtime prediction, and the
// exponentially modified Gaussian (EMG) distribution with n-th order
// statistics for predicting the maximum of n concurrent function
// communication delays.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Skewness returns the sample skewness of xs (0 if degenerate).
func Skewness(xs []float64) float64 {
	if len(xs) < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	n := float64(len(xs))
	m2 /= n
	m3 /= n
	if m2 <= 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// FitLinear solves the least-squares problem min ||Xw - y||² via the normal
// equations with partial pivoting. Rows of x are feature vectors.
func FitLinear(x [][]float64, y []float64) ([]float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("stats: need equal non-zero rows, got %d features and %d targets", len(x), len(y))
	}
	d := len(x[0])
	if d == 0 {
		return nil, fmt.Errorf("stats: empty feature vectors")
	}
	// A = XᵀX (d×d), b = Xᵀy.
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d+1)
	}
	for r, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("stats: ragged feature row %d", r)
		}
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a[i][j] += row[i] * row[j]
			}
			a[i][d] += row[i] * y[r]
		}
	}
	// Tikhonov damping keeps near-collinear profiles solvable.
	for i := 0; i < d; i++ {
		a[i][i] += 1e-9 * (a[i][i] + 1)
	}
	return solveGauss(a, d)
}

// solveGauss solves the augmented system a (d×(d+1)) in place.
func solveGauss(a [][]float64, d int) ([]float64, error) {
	for col := 0; col < d; col++ {
		pivot := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return nil, fmt.Errorf("stats: singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv := 1 / a[col][col]
		for r := 0; r < d; r++ {
			if r == col {
				continue
			}
			f := a[r][col] * inv
			for c := col; c <= d; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	w := make([]float64, d)
	for i := 0; i < d; i++ {
		w[i] = a[i][d] / a[i][i]
	}
	return w, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
