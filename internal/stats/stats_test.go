package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDescriptive(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if Variance(xs) != 1.25 {
		t.Fatalf("variance %v", Variance(xs))
	}
	if math.Abs(Std(xs)-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std %v", Std(xs))
	}
	if Max(xs) != 4 {
		t.Fatalf("max %v", Max(xs))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Fatal("empty-input conventions broken")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if p := Percentile(xs, 50); p != 30 {
		t.Fatalf("p50 %v", p)
	}
	if p := Percentile(xs, 0); p != 10 {
		t.Fatalf("p0 %v", p)
	}
	if p := Percentile(xs, 100); p != 50 {
		t.Fatalf("p100 %v", p)
	}
	if p := Percentile(xs, 25); p != 20 {
		t.Fatalf("p25 %v", p)
	}
	// Must not mutate input order.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 {
		t.Fatal("Percentile must not sort its input in place")
	}
}

func TestSkewness(t *testing.T) {
	sym := []float64{-2, -1, 0, 1, 2}
	if s := Skewness(sym); math.Abs(s) > 1e-12 {
		t.Fatalf("symmetric data skew %v", s)
	}
	right := []float64{0, 0, 0, 0, 10}
	if Skewness(right) <= 0 {
		t.Fatal("right-tailed data must have positive skew")
	}
}

func TestFitLinearRecoversExactModel(t *testing.T) {
	// y = 3 + 2a - b
	var x [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{1, a, b})
		y = append(y, 3+2*a-b)
	}
	w, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-6 {
			t.Fatalf("w = %v, want %v", w, want)
		}
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a := rng.Float64() * 100
		x = append(x, []float64{1, a})
		y = append(y, 5+0.7*a+rng.NormFloat64())
	}
	w, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[1]-0.7) > 0.02 {
		t.Fatalf("slope %v, want ~0.7", w[1])
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear(nil, nil); err == nil {
		t.Fatal("expected empty-input error")
	}
	if _, err := FitLinear([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("expected row-count mismatch error")
	}
	if _, err := FitLinear([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected ragged-row error")
	}
}

func TestEMGMoments(t *testing.T) {
	e := EMG{Mu: 10, Sigma: 2, Lambda: 0.5}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if m := e.Mean(); m != 12 {
		t.Fatalf("mean %v", m)
	}
	if v := e.Variance(); v != 8 {
		t.Fatalf("variance %v", v)
	}
	if err := (EMG{Mu: 1, Sigma: 0, Lambda: 1}).Validate(); err == nil {
		t.Fatal("expected invalid sigma error")
	}
}

func TestEMGSampleMatchesMoments(t *testing.T) {
	e := EMG{Mu: 15, Sigma: 3, Lambda: 0.25}
	rng := rand.New(rand.NewSource(7))
	n := 200000
	var xs []float64
	for i := 0; i < n; i++ {
		xs = append(xs, e.Sample(rng))
	}
	if math.Abs(Mean(xs)-e.Mean()) > 0.1 {
		t.Fatalf("sample mean %v vs %v", Mean(xs), e.Mean())
	}
	if math.Abs(Variance(xs)-e.Variance())/e.Variance() > 0.03 {
		t.Fatalf("sample variance %v vs %v", Variance(xs), e.Variance())
	}
}

func TestEMGCDFQuantileInverse(t *testing.T) {
	e := EMG{Mu: 20, Sigma: 4, Lambda: 0.1}
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		x := e.Quantile(p)
		if got := e.CDF(x); math.Abs(got-p) > 1e-6 {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestEMGCDFMonotoneAndBounded(t *testing.T) {
	f := func(mu, sigRaw, lamRaw, x1, x2 float64) bool {
		sig := 0.1 + math.Abs(sigRaw)
		lam := 0.01 + math.Abs(lamRaw)
		if sig > 1e6 || lam > 1e6 || math.Abs(mu) > 1e6 || math.Abs(x1) > 1e6 || math.Abs(x2) > 1e6 {
			return true // outside realistic parameter space
		}
		e := EMG{Mu: mu, Sigma: sig, Lambda: lam}
		a, b := x1, x2
		if a > b {
			a, b = b, a
		}
		fa, fb := e.CDF(a), e.CDF(b)
		return fa >= 0 && fb <= 1 && fa <= fb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedMaxAgainstMonteCarlo(t *testing.T) {
	e := EMG{Mu: 15, Sigma: 3, Lambda: 0.2} // Lambda-like comm overhead (ms)
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 8, 16} {
		analytic := e.ExpectedMax(n)
		const trials = 20000
		var sum float64
		for i := 0; i < trials; i++ {
			m := math.Inf(-1)
			for j := 0; j < n; j++ {
				if v := e.Sample(rng); v > m {
					m = v
				}
			}
			sum += m
		}
		mc := sum / trials
		if math.Abs(analytic-mc)/mc > 0.02 {
			t.Fatalf("n=%d: analytic %v vs monte-carlo %v", n, analytic, mc)
		}
	}
}

func TestExpectedMaxMonotoneInN(t *testing.T) {
	e := EMG{Mu: 10, Sigma: 2, Lambda: 0.5}
	prev := math.Inf(-1)
	for n := 1; n <= 16; n *= 2 {
		m := e.ExpectedMax(n)
		if m <= prev {
			t.Fatalf("ExpectedMax not increasing at n=%d: %v <= %v", n, m, prev)
		}
		prev = m
	}
}

func TestFitEMGRecoversParameters(t *testing.T) {
	truth := EMG{Mu: 18, Sigma: 3, Lambda: 0.125}
	rng := rand.New(rand.NewSource(11))
	var xs []float64
	for i := 0; i < 100000; i++ {
		xs = append(xs, truth.Sample(rng))
	}
	fit, err := FitEMG(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mean()-truth.Mean())/truth.Mean() > 0.02 {
		t.Fatalf("fit mean %v vs %v", fit.Mean(), truth.Mean())
	}
	if math.Abs(fit.Mu-truth.Mu)/truth.Mu > 0.1 {
		t.Fatalf("fit mu %v vs %v", fit.Mu, truth.Mu)
	}
	if math.Abs(1/fit.Lambda-1/truth.Lambda)/(1/truth.Lambda) > 0.1 {
		t.Fatalf("fit tau %v vs %v", 1/fit.Lambda, 1/truth.Lambda)
	}
}

func TestFitEMGErrors(t *testing.T) {
	if _, err := FitEMG([]float64{1, 2, 3}); err == nil {
		t.Fatal("expected too-few-samples error")
	}
	same := make([]float64, 20)
	if _, err := FitEMG(same); err == nil {
		t.Fatal("expected zero-variance error")
	}
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("dot product wrong")
	}
}
