// Package tensor provides a dense float32 tensor library used as the
// numerical substrate for model serving. It plays the role MXNet's NDArray
// plays in the original Gillis implementation: enough functionality to run
// exact forward passes of convolutional and recurrent networks, and to
// slice/concatenate tensors along arbitrary dimensions for partitioned
// execution.
//
// Tensors are immutable-shape, row-major (C order), and always own their
// backing storage. Slicing copies; this keeps the partitioned-execution code
// simple and makes bitwise output comparison between monolithic and
// partitioned runs meaningful.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	shape []int
	data  []float32

	// dims is inline backing for shape: every shape in this codebase has
	// rank <= 4, so storing it in the struct keeps tensor construction at
	// two heap allocations (struct + data), which matters on the kernel
	// hot path where an output tensor is built per forward call.
	dims [4]int
}

// newShaped returns a tensor with the given shape (copied, inline when rank
// permits) wrapping data.
func newShaped(shape []int, data []float32) *Tensor {
	t := &Tensor{data: data}
	if len(shape) <= len(t.dims) {
		t.shape = t.dims[:len(shape)]
		copy(t.shape, shape)
	} else {
		t.shape = cloneInts(shape)
	}
	return t
}

// New returns a zero-filled tensor with the given shape. All dimensions must
// be positive.
func New(shape ...int) *Tensor {
	n, err := checkShape(shape)
	if err != nil {
		panic(err) // programmer error: shapes are static in this codebase
	}
	return newShaped(shape, make([]float32, n))
}

// FromData wraps the given data in a tensor of the given shape. The data
// slice is used directly (not copied); callers must not alias it afterwards.
func FromData(data []float32, shape ...int) (*Tensor, error) {
	n, err := checkShape(shape)
	if err != nil {
		return nil, err
	}
	if len(data) != n {
		return nil, fmt.Errorf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n)
	}
	return newShaped(shape, data), nil
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Rand returns a tensor with elements drawn uniformly from [-scale, scale)
// using the given source. Deterministic for a fixed seed.
func Rand(rng *rand.Rand, scale float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = (rng.Float32()*2 - 1) * scale
	}
	return t
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return cloneInts(t.shape) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Bytes returns the storage footprint of the tensor's elements in bytes.
func (t *Tensor) Bytes() int64 { return int64(len(t.data)) * 4 }

// Data returns the backing storage. The slice aliases the tensor; callers
// that mutate it mutate the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.data))
	copy(d, t.data)
	return newShaped(t.shape, d)
}

// Reshape returns a tensor sharing t's data with a new shape of equal
// element count.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n, err := checkShape(shape)
	if err != nil {
		return nil, err
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.data), shape, n)
	}
	return newShaped(shape, t.data), nil
}

// Offset returns the flat index of the given multi-dimensional index.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.Offset(idx...)] }

// Set assigns the element at the given index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.Offset(idx...)] = v }

// SliceDim returns a copy of the sub-tensor spanning [start, end) along
// dimension dim; all other dimensions are kept whole.
func (t *Tensor) SliceDim(dim, start, end int) (*Tensor, error) {
	if dim < 0 || dim >= len(t.shape) {
		return nil, fmt.Errorf("tensor: slice dim %d out of range for rank %d", dim, len(t.shape))
	}
	if start < 0 || end > t.shape[dim] || start >= end {
		return nil, fmt.Errorf("tensor: slice [%d,%d) out of range for dim %d of size %d", start, end, dim, t.shape[dim])
	}
	outShape := cloneInts(t.shape)
	outShape[dim] = end - start
	out := New(outShape...)

	outer := 1
	for i := 0; i < dim; i++ {
		outer *= t.shape[i]
	}
	inner := 1
	for i := dim + 1; i < len(t.shape); i++ {
		inner *= t.shape[i]
	}
	srcStride := t.shape[dim] * inner
	dstStride := (end - start) * inner
	for o := 0; o < outer; o++ {
		src := t.data[o*srcStride+start*inner : o*srcStride+end*inner]
		dst := out.data[o*dstStride : (o+1)*dstStride]
		copy(dst, src)
	}
	return out, nil
}

// ConcatDim concatenates the tensors along dimension dim. All other
// dimensions must agree.
func ConcatDim(dim int, parts ...*Tensor) (*Tensor, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("tensor: concat of zero tensors")
	}
	first := parts[0]
	if dim < 0 || dim >= len(first.shape) {
		return nil, fmt.Errorf("tensor: concat dim %d out of range for rank %d", dim, len(first.shape))
	}
	total := 0
	for _, p := range parts {
		if p.Rank() != first.Rank() {
			return nil, fmt.Errorf("tensor: concat rank mismatch %d vs %d", p.Rank(), first.Rank())
		}
		for i := range p.shape {
			if i != dim && p.shape[i] != first.shape[i] {
				return nil, fmt.Errorf("tensor: concat shape mismatch at dim %d: %v vs %v", i, p.shape, first.shape)
			}
		}
		total += p.shape[dim]
	}
	outShape := cloneInts(first.shape)
	outShape[dim] = total
	out := New(outShape...)

	outer := 1
	for i := 0; i < dim; i++ {
		outer *= first.shape[i]
	}
	inner := 1
	for i := dim + 1; i < len(first.shape); i++ {
		inner *= first.shape[i]
	}
	dstStride := total * inner
	for o := 0; o < outer; o++ {
		at := 0
		for _, p := range parts {
			pn := p.shape[dim] * inner
			copy(out.data[o*dstStride+at:o*dstStride+at+pn], p.data[o*pn:(o+1)*pn])
			at += pn
		}
	}
	return out, nil
}

// PadDim returns a copy of t with `before` zero slices prepended and `after`
// zero slices appended along dimension dim.
func (t *Tensor) PadDim(dim, before, after int) (*Tensor, error) {
	if dim < 0 || dim >= len(t.shape) {
		return nil, fmt.Errorf("tensor: pad dim %d out of range for rank %d", dim, len(t.shape))
	}
	if before < 0 || after < 0 {
		return nil, fmt.Errorf("tensor: negative padding (%d, %d)", before, after)
	}
	if before == 0 && after == 0 {
		return t.Clone(), nil
	}
	outShape := cloneInts(t.shape)
	outShape[dim] += before + after
	out := New(outShape...)

	outer := 1
	for i := 0; i < dim; i++ {
		outer *= t.shape[i]
	}
	inner := 1
	for i := dim + 1; i < len(t.shape); i++ {
		inner *= t.shape[i]
	}
	srcStride := t.shape[dim] * inner
	dstStride := outShape[dim] * inner
	for o := 0; o < outer; o++ {
		copy(out.data[o*dstStride+before*inner:o*dstStride+before*inner+srcStride], t.data[o*srcStride:(o+1)*srcStride])
	}
	return out, nil
}

// AddInPlace adds other element-wise into t. Shapes must match exactly.
func (t *Tensor) AddInPlace(other *Tensor) error {
	if !ShapeEqual(t.shape, other.shape) {
		return fmt.Errorf("tensor: add shape mismatch %v vs %v", t.shape, other.shape)
	}
	for i := range t.data {
		t.data[i] += other.data[i]
	}
	return nil
}

// Equal reports whether the two tensors have identical shapes and bitwise
// identical data.
func Equal(a, b *Tensor) bool {
	if !ShapeEqual(a.shape, b.shape) {
		return false
	}
	for i := range a.data {
		if a.data[i] != b.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether the tensors have identical shapes and element-wise
// absolute difference no greater than eps.
func AllClose(a, b *Tensor, eps float32) bool {
	if !ShapeEqual(a.shape, b.shape) {
		return false
	}
	for i := range a.data {
		d := a.data[i] - b.data[i]
		if d < -eps || d > eps || math.IsNaN(float64(d)) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum element-wise absolute difference between two
// same-shaped tensors.
func MaxAbsDiff(a, b *Tensor) (float32, error) {
	if !ShapeEqual(a.shape, b.shape) {
		return 0, fmt.Errorf("tensor: shape mismatch %v vs %v", a.shape, b.shape)
	}
	var m float32
	for i := range a.data {
		d := a.data[i] - b.data[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m, nil
}

// ShapeEqual reports whether two shapes are identical.
func ShapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NumElements returns the element count of a shape, or an error if any
// dimension is non-positive.
func NumElements(shape []int) (int, error) { return checkShape(shape) }

// SizeBytes returns the fp32 byte footprint of a shape.
func SizeBytes(shape []int) int64 {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return int64(n) * 4
}

// String renders a compact description, e.g. "f32[3 224 224]".
func (t *Tensor) String() string {
	var sb strings.Builder
	sb.WriteString("f32[")
	for i, d := range t.shape {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", d)
	}
	sb.WriteByte(']')
	return sb.String()
}

func checkShape(shape []int) (int, error) {
	if len(shape) == 0 {
		return 0, fmt.Errorf("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return 0, fmt.Errorf("tensor: non-positive dimension in shape %v", shape)
		}
		n *= d
	}
	return n, nil
}

func cloneInts(s []int) []int {
	out := make([]int, len(s))
	copy(out, s)
	return out
}
