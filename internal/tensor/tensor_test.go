package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	x := New(2, 3, 4)
	if x.Rank() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("unexpected shape %v", x.Shape())
	}
	if x.Len() != 24 || x.Bytes() != 96 {
		t.Fatalf("unexpected len/bytes: %d/%d", x.Len(), x.Bytes())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestShapeReturnsCopy(t *testing.T) {
	x := New(2, 3)
	s := x.Shape()
	s[0] = 99
	if x.Dim(0) != 2 {
		t.Fatal("Shape must return a copy")
	}
}

func TestFromData(t *testing.T) {
	if _, err := FromData([]float32{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("expected length mismatch error")
	}
	x, err := FromData([]float32{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if x.At(1, 0) != 3 {
		t.Fatalf("row-major layout broken: got %v", x.At(1, 0))
	}
}

func TestAtSetOffset(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7, 1, 2, 3)
	if x.At(1, 2, 3) != 7 {
		t.Fatal("At/Set roundtrip failed")
	}
	if x.Offset(1, 2, 3) != 1*12+2*4+3 {
		t.Fatalf("offset wrong: %d", x.Offset(1, 2, 3))
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-bounds index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFullAndClone(t *testing.T) {
	x := Full(3.5, 2, 2)
	y := x.Clone()
	y.Set(0, 0, 0)
	if x.At(0, 0) != 3.5 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestReshape(t *testing.T) {
	x := New(2, 6)
	y, err := x.Reshape(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	y.Set(5, 0, 1)
	if x.At(0, 1) != 5 {
		t.Fatal("Reshape must share data")
	}
	if _, err := x.Reshape(5, 5); err == nil {
		t.Fatal("expected element-count mismatch error")
	}
}

func TestSliceDim(t *testing.T) {
	x, _ := FromData([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 3, 3)
	mid, err := x.SliceDim(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromData([]float32{4, 5, 6}, 1, 3)
	if !Equal(mid, want) {
		t.Fatalf("row slice got %v", mid.Data())
	}
	col, err := x.SliceDim(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantCol, _ := FromData([]float32{3, 6, 9}, 3, 1)
	if !Equal(col, wantCol) {
		t.Fatalf("col slice got %v", col.Data())
	}
	if _, err := x.SliceDim(0, 2, 2); err == nil {
		t.Fatal("expected empty-slice error")
	}
	if _, err := x.SliceDim(3, 0, 1); err == nil {
		t.Fatal("expected bad-dim error")
	}
}

func TestConcatDim(t *testing.T) {
	a, _ := FromData([]float32{1, 2}, 1, 2)
	b, _ := FromData([]float32{3, 4, 5, 6}, 2, 2)
	cat, err := ConcatDim(0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromData([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	if !Equal(cat, want) {
		t.Fatalf("concat got %v", cat.Data())
	}
	if _, err := ConcatDim(1, a, b); err == nil {
		t.Fatal("expected shape mismatch error")
	}
	if _, err := ConcatDim(0); err == nil {
		t.Fatal("expected empty-concat error")
	}
}

func TestPadDim(t *testing.T) {
	x, _ := FromData([]float32{1, 2, 3, 4}, 2, 2)
	p, err := x.PadDim(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromData([]float32{0, 0, 1, 2, 3, 4, 0, 0}, 4, 2)
	if !Equal(p, want) {
		t.Fatalf("pad got %v", p.Data())
	}
	if _, err := x.PadDim(0, -1, 0); err == nil {
		t.Fatal("expected negative-pad error")
	}
}

func TestAddInPlace(t *testing.T) {
	a, _ := FromData([]float32{1, 2}, 2)
	b, _ := FromData([]float32{10, 20}, 2)
	if err := a.AddInPlace(b); err != nil {
		t.Fatal(err)
	}
	if a.At(1) != 22 {
		t.Fatalf("add got %v", a.Data())
	}
	c := New(3)
	if err := a.AddInPlace(c); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestAllCloseAndMaxAbsDiff(t *testing.T) {
	a, _ := FromData([]float32{1, 2}, 2)
	b, _ := FromData([]float32{1.0005, 2}, 2)
	if !AllClose(a, b, 1e-3) {
		t.Fatal("expected close")
	}
	if AllClose(a, b, 1e-5) {
		t.Fatal("expected not close")
	}
	d, err := MaxAbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d < 4e-4 || d > 6e-4 {
		t.Fatalf("unexpected max diff %v", d)
	}
}

func TestRandDeterministic(t *testing.T) {
	a := Rand(rand.New(rand.NewSource(1)), 1, 4, 4)
	b := Rand(rand.New(rand.NewSource(1)), 1, 4, 4)
	if !Equal(a, b) {
		t.Fatal("Rand must be deterministic for a fixed seed")
	}
	c := Rand(rand.New(rand.NewSource(2)), 1, 4, 4)
	if Equal(a, c) {
		t.Fatal("different seeds should differ")
	}
}

// Property: slicing a tensor into contiguous chunks along any dim and
// concatenating them reproduces the original exactly.
func TestSliceConcatRoundtrip(t *testing.T) {
	f := func(seed int64, dimSel, cuts uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := []int{1 + rng.Intn(5), 1 + rng.Intn(5), 1 + rng.Intn(5)}
		x := Rand(rng, 10, shape...)
		dim := int(dimSel) % 3
		n := shape[dim]
		k := 1 + int(cuts)%3
		if k > n {
			k = n
		}
		var parts []*Tensor
		at := 0
		for i := 0; i < k; i++ {
			end := at + n/k
			if i == k-1 {
				end = n
			}
			p, err := x.SliceDim(dim, at, end)
			if err != nil {
				return false
			}
			parts = append(parts, p)
			at = end
		}
		back, err := ConcatDim(dim, parts...)
		if err != nil {
			return false
		}
		return Equal(x, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: PadDim then SliceDim of the original region is identity.
func TestPadSliceIdentity(t *testing.T) {
	f := func(seed int64, before, after uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := []int{1 + rng.Intn(4), 1 + rng.Intn(4)}
		x := Rand(rng, 1, shape...)
		b, a := int(before)%4, int(after)%4
		p, err := x.PadDim(0, b, a)
		if err != nil {
			return false
		}
		got, err := p.SliceDim(0, b, b+shape[0])
		if err != nil {
			return false
		}
		return Equal(x, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
