package trace

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// This file holds the trace serializers. All three are deterministic: spans
// are emitted in tree order (children in creation order), attributes in
// insertion order, and no map is iterated — so a fixed seed yields
// byte-identical output, which the golden-trace tests rely on.

// Rename rewrites span names, event names and attribute values during
// serialization. Tests use it to strip the per-process deployment prefix
// from function names so golden files are stable across test orderings.
type Rename func(string) string

func identity(s string) string { return s }

// Canonical renders the full trace as a deterministic text tree: structure,
// virtual timings, billing attribution, faults, attributes and events.
func (t *Trace) Canonical(rename Rename) []byte {
	return t.render(rename, true)
}

// Structure renders the trace without virtual timings or billing: span
// tree, kinds, names, status, faults, attributes, and event names. Two
// traces with identical Structure output did the same work in the same
// order, even if simulated durations differ (e.g. under a different modeled
// vCPU count).
func (t *Trace) Structure(rename Rename) []byte {
	return t.render(rename, false)
}

func (t *Trace) render(rename Rename, timings bool) []byte {
	if t == nil {
		return nil
	}
	if rename == nil {
		rename = identity
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sb strings.Builder
	t.renderSpan(&sb, t.spans[0], 0, rename, timings)
	return []byte(sb.String())
}

func (t *Trace) renderSpan(sb *strings.Builder, s *Span, depth int, rename Rename, timings bool) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(sb, "%s%s %s", indent, s.Kind, rename(s.Name))
	if timings {
		end := s.End
		if !s.ended {
			end = s.Start
		}
		fmt.Fprintf(sb, " start=%dns dur=%dns", int64(s.Start), int64(end-s.Start))
		if !s.ended {
			sb.WriteString(" unfinished")
		}
		if s.BilledMs != 0 || s.TotalBilledMs != 0 {
			fmt.Fprintf(sb, " billed=%d/%dms", s.BilledMs, s.TotalBilledMs)
		}
	}
	if s.Err != "" {
		if s.Fault != "" {
			fmt.Fprintf(sb, " err(%s)", s.Fault)
		} else {
			sb.WriteString(" err")
		}
	}
	for _, a := range s.Attrs {
		fmt.Fprintf(sb, " %s=%s", a.Key, rename(a.Val))
	}
	sb.WriteByte('\n')
	for _, ev := range s.Events {
		fmt.Fprintf(sb, "%s  @ %s", indent, rename(ev.Name))
		if timings {
			fmt.Fprintf(sb, " at=%dns", int64(ev.At))
		}
		for _, a := range ev.Attrs {
			fmt.Fprintf(sb, " %s=%s", a.Key, rename(a.Val))
		}
		sb.WriteByte('\n')
	}
	for _, ci := range s.Children {
		t.renderSpan(sb, t.spans[ci], depth+1, rename, timings)
	}
}

// ChromeJSON renders the trace in the Chrome trace-event format (the JSON
// array form), loadable in chrome://tracing and Perfetto. Spans become
// complete ("X") events; span events become instant ("i") events. Each
// invocation gets its own tid so parallel fork-join workers render as
// separate tracks; non-invocation spans inherit the nearest invocation's
// track.
func (t *Trace) ChromeJSON(rename Rename) []byte {
	if t == nil {
		return nil
	}
	if rename == nil {
		rename = identity
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	// Assign tracks: the root is tid 0, every invoke span opens a new tid,
	// and other spans inherit their parent's tid. Spans are in creation
	// order, so parents precede children.
	tids := make([]int, len(t.spans))
	next := 1
	for _, s := range t.spans {
		if s.Parent < 0 {
			tids[s.ID] = 0
			continue
		}
		if s.Kind == KindInvoke {
			tids[s.ID] = next
			next++
			continue
		}
		tids[s.ID] = tids[s.Parent]
	}

	var sb strings.Builder
	sb.WriteString("[\n")
	first := true
	emit := func(line string) {
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		sb.WriteString(line)
	}
	for _, s := range t.spans {
		end := s.End
		if !s.ended {
			end = s.Start
		}
		var args strings.Builder
		fmt.Fprintf(&args, "%q:%q", "kind", s.Kind.String())
		if s.BilledMs != 0 || s.TotalBilledMs != 0 {
			fmt.Fprintf(&args, ",%q:%d,%q:%d", "billed_ms", s.BilledMs, "total_billed_ms", s.TotalBilledMs)
		}
		if s.Err != "" {
			fmt.Fprintf(&args, ",%q:%q", "error", rename(s.Err))
		}
		if s.Fault != "" {
			fmt.Fprintf(&args, ",%q:%q", "fault", s.Fault)
		}
		for _, a := range s.Attrs {
			fmt.Fprintf(&args, ",%q:%q", a.Key, rename(a.Val))
		}
		emit(fmt.Sprintf(`  {"name":%q,"cat":%q,"ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d,"args":{%s}}`,
			rename(s.Name), s.Kind.String(), micros(s.Start), micros(end-s.Start), tids[s.ID], args.String()))
		for _, ev := range s.Events {
			var evArgs strings.Builder
			for i, a := range ev.Attrs {
				if i > 0 {
					evArgs.WriteByte(',')
				}
				fmt.Fprintf(&evArgs, "%q:%q", a.Key, rename(a.Val))
			}
			emit(fmt.Sprintf(`  {"name":%q,"cat":"event","ph":"i","s":"t","ts":%s,"pid":1,"tid":%d,"args":{%s}}`,
				rename(ev.Name), micros(ev.At), tids[s.ID], evArgs.String()))
		}
	}
	sb.WriteString("\n]\n")
	return []byte(sb.String())
}

// micros formats a virtual duration as Chrome's microsecond timestamps,
// with fixed precision so output is byte-deterministic.
func micros(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/1e3, 'f', 3, 64)
}
