package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a concurrent metrics registry: named counters and streaming
// histograms aggregated across queries. The platform owns one per
// deployment by default; long-lived front ends (gillis-server) share a
// single registry across many short-lived platform simulations.
//
// Counters are lock-free; histograms take a short mutex per observation.
// Get-or-create lookups are guarded by a registry lock, so callers on hot
// paths should hold on to the returned handle.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{min: math.Inf(1), max: math.Inf(-1)}
		r.hists[name] = h
	}
	return h
}

// Gauge returns the named gauge, creating it unset if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Gauge is a point-in-time metric: the current value plus the virtual-time
// stamp of its last change. Controllers record state through gauges (active
// plan index, fault-regime estimate, brownout on/off) where a counter's
// monotonicity is wrong. The stamp is caller-supplied — virtual-clock
// milliseconds, never wall time — so summaries stay bit-reproducible.
type Gauge struct {
	mu        sync.Mutex
	set       bool
	value     float64
	changedMs float64
}

// Set records v at virtual time atMs. The last-change stamp only advances
// when the value actually changes (or on the first Set), so an idle
// controller re-asserting the same state each tick leaves the gauge's
// history untouched.
func (g *Gauge) Set(v, atMs float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.set && g.value == v {
		return
	}
	g.set = true
	g.value = v
	g.changedMs = atMs
}

// Value returns the current value (0 when never set).
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.value
}

// LastChangeMs returns the virtual-time stamp of the last value change and
// whether the gauge has ever been set.
func (g *Gauge) LastChangeMs() (float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.changedMs, g.set
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// histBuckets is the number of exponential histogram buckets. Bucket i
// holds observations in [2^(i-histBias-1), 2^(i-histBias)); the span covers
// roughly 1 µs to 30 minutes when observations are milliseconds.
const (
	histBuckets = 52
	histBias    = 10
)

// Histogram is a streaming histogram over float64 observations with
// power-of-two buckets: exact count/sum/min/max plus bucket counts for
// approximate quantiles.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v float64) int {
	if v <= 0 {
		return 0
	}
	i := int(math.Floor(math.Log2(v))) + histBias + 1
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketUpper returns the exclusive upper bound of bucket i.
func bucketUpper(i int) float64 {
	return math.Exp2(float64(i - histBias))
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns an upper-bound estimate of the q-quantile (q in [0,1])
// from the bucket counts: the upper edge of the bucket holding the q-th
// observation, clamped to the observed max. It returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			return math.Min(bucketUpper(i), h.max)
		}
	}
	return h.max
}

// Summary renders every metric as sorted, deterministic text — the format
// gillis-server serves on its metrics endpoint.
func (r *Registry) Summary() string {
	r.mu.Lock()
	cnames := make([]string, 0, len(r.counters))
	for n := range r.counters {
		cnames = append(cnames, n)
	}
	gnames := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gnames = append(gnames, n)
	}
	hnames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		hnames = append(hnames, n)
	}
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	sort.Strings(cnames)
	sort.Strings(gnames)
	sort.Strings(hnames)
	var sb strings.Builder
	for _, n := range cnames {
		fmt.Fprintf(&sb, "counter %s %d\n", n, counters[n].Value())
	}
	for _, n := range gnames {
		g := gauges[n]
		g.mu.Lock()
		set, value, changed := g.set, g.value, g.changedMs
		g.mu.Unlock()
		if !set {
			fmt.Fprintf(&sb, "gauge %s unset\n", n)
			continue
		}
		fmt.Fprintf(&sb, "gauge %s value=%g last_change_ms=%.3f\n", n, value, changed)
	}
	for _, n := range hnames {
		h := hists[n]
		h.mu.Lock()
		count, sum, min, max := h.count, h.sum, h.min, h.max
		h.mu.Unlock()
		if count == 0 {
			fmt.Fprintf(&sb, "histogram %s count=0\n", n)
			continue
		}
		fmt.Fprintf(&sb, "histogram %s count=%d sum=%.3f min=%.3f mean=%.3f p50=%.3f p99=%.3f max=%.3f\n",
			n, count, sum, min, sum/float64(count), h.Quantile(0.5), h.Quantile(0.99), max)
	}
	return sb.String()
}
