package trace

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("a") != c {
		t.Error("get-or-create must return the same handle")
	}
	if r.Counter("b").Value() != 0 {
		t.Error("new counter must start at zero")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("state")
	if r.Gauge("state") != g {
		t.Error("get-or-create must return the same handle")
	}
	if v := g.Value(); v != 0 {
		t.Errorf("unset gauge value = %v, want 0", v)
	}
	if _, set := g.LastChangeMs(); set {
		t.Error("new gauge must report unset")
	}
	g.Set(2, 100)
	if v := g.Value(); v != 2 {
		t.Errorf("value = %v, want 2", v)
	}
	if at, set := g.LastChangeMs(); !set || at != 100 {
		t.Errorf("last change = %v,%v, want 100,true", at, set)
	}
	// Re-asserting the same value must not advance the stamp.
	g.Set(2, 200)
	if at, _ := g.LastChangeMs(); at != 100 {
		t.Errorf("stamp advanced on no-op Set: %v", at)
	}
	g.Set(3, 300)
	if at, _ := g.LastChangeMs(); at != 300 {
		t.Errorf("stamp = %v, want 300", at)
	}
	// First Set always stamps, even when setting the zero value.
	z := r.Gauge("zero")
	z.Set(0, 50)
	if at, set := z.LastChangeMs(); !set || at != 50 {
		t.Errorf("zero-value first Set: %v,%v, want 50,true", at, set)
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for v := 1.0; v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Errorf("sum = %v", h.Sum())
	}
	if h.Mean() != 50.5 {
		t.Errorf("mean = %v", h.Mean())
	}
	// Power-of-two buckets: the quantile is an upper bound within one
	// bucket width, clamped to the observed max.
	p50 := h.Quantile(0.5)
	if p50 < 50 || p50 > 64 {
		t.Errorf("p50 = %v, want in [50, 64]", p50)
	}
	if got := h.Quantile(1.0); got != 100 {
		t.Errorf("p100 = %v, want clamped to max 100", got)
	}
	if r.Histogram("empty").Quantile(0.5) != 0 || r.Histogram("empty").Mean() != 0 {
		t.Error("empty histogram stats must be zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	// Non-positive observations land in bucket 0; huge ones clamp to the
	// last bucket instead of indexing out of range.
	if bucketOf(0) != 0 || bucketOf(-5) != 0 {
		t.Error("non-positive values must map to bucket 0")
	}
	if bucketOf(math.MaxFloat64) != histBuckets-1 {
		t.Error("huge values must clamp to the last bucket")
	}
	for _, v := range []float64{0.001, 0.5, 1, 3, 1024, 1e6} {
		b := bucketOf(v)
		if b < 0 || b >= histBuckets {
			t.Fatalf("bucketOf(%v) = %d out of range", v, b)
		}
		if v < bucketUpper(b-1) || v > bucketUpper(b) {
			t.Errorf("bucketOf(%v) = %d, bounds (%v, %v]", v, b, bucketUpper(b-1), bucketUpper(b))
		}
	}
}

func TestSummaryDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("z.last").Add(2)
		r.Counter("a.first").Add(1)
		h := r.Histogram("m.lat")
		h.Observe(1)
		h.Observe(9)
		r.Histogram("m.empty")
		r.Gauge("g.plan").Set(1, 250)
		r.Gauge("g.unset")
		return r
	}
	a, b := build().Summary(), build().Summary()
	if a != b {
		t.Fatalf("summary not deterministic:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSpace(a), "\n")
	want := []string{
		"counter a.first 1",
		"counter z.last 2",
		"gauge g.plan value=1 last_change_ms=250.000",
		"gauge g.unset unset",
		"histogram m.empty count=0",
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d = %q, want %q", i, lines[i], w)
		}
	}
	if !strings.HasPrefix(lines[5], "histogram m.lat count=2 sum=10.000 min=1.000 mean=5.000") {
		t.Errorf("histogram line = %q", lines[5])
	}
}

// TestRegistryConcurrent hammers the registry from many goroutines; run
// under -race (the Makefile matrix includes this package) it verifies the
// lock-free counters and locked histograms race-cleanly, including
// concurrent get-or-create of the same names.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Counter(fmt.Sprintf("own.%d", w)).Inc()
				r.Histogram("shared.h").Observe(float64(i % 17))
				r.Gauge("shared.g").Set(float64(i%3), float64(i))
				if i%100 == 0 {
					_ = r.Summary() // concurrent reads race against writes
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Errorf("shared counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared.h").Count(); got != workers*perWorker {
		t.Errorf("shared histogram count = %d, want %d", got, workers*perWorker)
	}
}
