// Package trace is Gillis's query-level tracing subsystem: a deterministic,
// allocation-light span/event tree recorded against the simulation's virtual
// clock, plus a concurrent metrics registry (see metrics.go) aggregated
// across queries.
//
// A Trace is a tree of Spans rooted at the query. The platform records one
// span per invocation (with upload/dispatch/cold-start/exec/download
// children), the serving runtime adds fork-join structure (groups, worker
// calls, attempts, fallbacks) and resilience events (retries, hedges), and
// the nn layer contributes per-operator kernel events. Because the
// simulation is deterministic, a trace is a reproducible artifact: the same
// seed yields byte-identical serializations, which the golden-trace tests
// pin.
//
// Every method is safe on a nil *Trace or nil *Span and does nothing, so
// tracing threads through hot paths at the cost of a single nil check when
// disabled.
package trace

import (
	"fmt"
	"sync"
	"time"
)

// Clock supplies virtual-time stamps: the current time plus a monotonically
// increasing sequence number that totally orders stamps taken at the same
// instant. simnet's Env.Stamp satisfies it.
type Clock func() (now time.Duration, seq int64)

// Kind classifies a span.
type Kind uint8

// Span kinds.
const (
	// KindQuery is the root span of one served query.
	KindQuery Kind = iota + 1
	// KindInvoke covers one platform invocation from dispatch to settle.
	KindInvoke
	// KindUpload is the request payload transfer (caller uplink).
	KindUpload
	// KindDispatch is the platform's invocation dispatch overhead.
	KindDispatch
	// KindColdStart is the instance cold-start penalty.
	KindColdStart
	// KindExec is the handler's execution on its instance.
	KindExec
	// KindDownload is the response payload transfer (caller downlink).
	KindDownload
	// KindGroup is one fork-join round of the serving runtime.
	KindGroup
	// KindCompute is local (master- or fallback-side) kernel execution.
	KindCompute
	// KindCall is one worker call including its full retry/hedge budget.
	KindCall
	// KindAttempt is a single invocation attempt within a call.
	KindAttempt
	// KindFallback is the master-local graceful-degradation path.
	KindFallback
)

var kindNames = [...]string{
	KindQuery:     "query",
	KindInvoke:    "invoke",
	KindUpload:    "upload",
	KindDispatch:  "dispatch",
	KindColdStart: "coldstart",
	KindExec:      "exec",
	KindDownload:  "download",
	KindGroup:     "group",
	KindCompute:   "compute",
	KindCall:      "call",
	KindAttempt:   "attempt",
	KindFallback:  "fallback",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Attr is one key-value annotation on a span or event.
type Attr struct {
	Key, Val string
}

// Event is an instantaneous marker within a span (a retry, a hedge firing,
// a kernel op execution).
type Event struct {
	Name  string
	At    time.Duration
	Seq   int64
	Attrs []Attr
}

// Span is one timed interval of a query. Fields are written under the
// owning Trace's lock during the simulation; reading them directly is safe
// once the simulation has drained (simnet.Env.Run returned).
type Span struct {
	tr *Trace

	// ID is the span's creation index within its trace; Parent is the
	// parent's ID (-1 for the root). Creation order is deterministic
	// because at most one simulation process executes at a time.
	ID     int
	Parent int
	Kind   Kind
	Name   string

	// Start/End are virtual times; the Seq twins order same-instant stamps.
	Start, End       time.Duration
	StartSeq, EndSeq int64
	ended            bool

	// BilledMs is the billed duration attributed to this span itself (only
	// invocation spans carry billing); TotalBilledMs adds nested
	// invocations, as reported by the platform at settle time.
	BilledMs      int64
	TotalBilledMs int64

	// Err is the failure message for a failed span ("" = ok); Fault is the
	// typed platform fault kind ("failure", "timeout", "evicted") when the
	// failure was an InvokeError.
	Err   string
	Fault string

	Attrs    []Attr
	Events   []Event
	Children []int
}

// Trace is one query's span tree.
type Trace struct {
	mu    sync.Mutex
	name  string
	clock Clock
	spans []*Span
}

// New creates a trace with a root span of KindQuery. clock must not be nil.
func New(name string, clock Clock) *Trace {
	t := &Trace{name: name, clock: clock}
	now, seq := clock()
	root := &Span{tr: t, ID: 0, Parent: -1, Kind: KindQuery, Name: name, Start: now, StartSeq: seq}
	t.spans = append(t.spans, root)
	return t
}

// Name returns the trace's name.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Root returns the query span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.spans[0]
}

// Spans returns the spans in creation order. The slice is a copy; the spans
// are shared, so read them only after the simulation has drained.
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Child opens a child span. It returns nil (and records nothing) on a nil
// receiver.
func (s *Span) Child(kind Kind, name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(s, kind, name)
}

// Childf is Child with a formatted name; the formatting cost is only paid
// when the receiver is non-nil.
func (s *Span) Childf(kind Kind, format string, args ...any) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(s, kind, fmt.Sprintf(format, args...))
}

func (t *Trace) newSpan(parent *Span, kind Kind, name string) *Span {
	now, seq := t.clock()
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{tr: t, ID: len(t.spans), Parent: parent.ID, Kind: kind, Name: name, Start: now, StartSeq: seq}
	t.spans = append(t.spans, sp)
	parent.Children = append(parent.Children, sp.ID)
	return sp
}

// EndSpan closes the span at the current virtual time. Ending twice keeps
// the first stamp.
func (s *Span) EndSpan() {
	if s == nil {
		return
	}
	now, seq := s.tr.clock()
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.End, s.EndSeq = now, seq
}

// Ended reports whether the span has been closed.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.ended
}

// SetBilled attributes billed milliseconds to the span: own is this
// invocation's billing, total includes nested invocations.
func (s *Span) SetBilled(own, total int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.BilledMs, s.TotalBilledMs = own, total
}

// SetAttr annotates the span. A repeated key overwrites the earlier value.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Val = val
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{key, val})
}

// Attr returns the value of an annotation ("" when absent).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// Event records an instantaneous marker with optional key-value pairs
// (kv must alternate key, value).
func (s *Span) Event(name string, kv ...string) {
	if s == nil {
		return
	}
	now, seq := s.tr.clock()
	ev := Event{Name: name, At: now, Seq: seq}
	for i := 0; i+1 < len(kv); i += 2 {
		ev.Attrs = append(ev.Attrs, Attr{kv[i], kv[i+1]})
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.Events = append(s.Events, ev)
}

// Fail marks the span failed with the typed platform fault kind ("" when
// the failure is not an InvokeError) and a message. It does not end the
// span.
func (s *Span) Fail(fault, msg string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.Err, s.Fault = msg, fault
}
