package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock is a deterministic Clock for unit tests.
type fakeClock struct {
	now time.Duration
	seq int64
}

func (f *fakeClock) stamp() (time.Duration, int64) {
	f.seq++
	return f.now, f.seq
}

func (f *fakeClock) advance(d time.Duration) { f.now += d }

func TestSpanTree(t *testing.T) {
	clk := &fakeClock{}
	tr := New("q", clk.stamp)
	root := tr.Root()
	if root == nil || root.Kind != KindQuery || root.Parent != -1 {
		t.Fatalf("bad root: %+v", root)
	}

	clk.advance(time.Millisecond)
	a := root.Child(KindInvoke, "invoke:a")
	clk.advance(time.Millisecond)
	b := a.Childf(KindExec, "exec%d", 1)
	b.SetAttr("k", "v1")
	b.SetAttr("k", "v2") // overwrite
	b.Event("ev", "x", "1")
	clk.advance(time.Millisecond)
	b.EndSpan()
	a.SetBilled(3, 7)
	a.EndSpan()
	a.EndSpan() // idempotent: keeps the first stamp
	root.EndSpan()

	if tr.Len() != 3 {
		t.Fatalf("Len=%d, want 3", tr.Len())
	}
	spans := tr.Spans()
	if spans[1] != a || spans[2] != b {
		t.Fatal("spans not in creation order")
	}
	if a.Parent != root.ID || b.Parent != a.ID {
		t.Errorf("bad parent links: a.Parent=%d b.Parent=%d", a.Parent, b.Parent)
	}
	if len(root.Children) != 1 || root.Children[0] != a.ID {
		t.Errorf("root children = %v", root.Children)
	}
	if b.Attr("k") != "v2" {
		t.Errorf("attr overwrite failed: %q", b.Attr("k"))
	}
	if b.Attr("missing") != "" {
		t.Error("missing attr must be empty")
	}
	if len(b.Events) != 1 || b.Events[0].Name != "ev" || b.Events[0].Attrs[0] != (Attr{"x", "1"}) {
		t.Errorf("bad event: %+v", b.Events)
	}
	if a.BilledMs != 3 || a.TotalBilledMs != 7 {
		t.Errorf("billing = %d/%d", a.BilledMs, a.TotalBilledMs)
	}
	if !a.Ended() || a.End != 3*time.Millisecond {
		t.Errorf("a end = %v (ended=%v)", a.End, a.Ended())
	}
	if b.Start != 2*time.Millisecond || b.End != 3*time.Millisecond {
		t.Errorf("b interval = [%v, %v]", b.Start, b.End)
	}
	if a.StartSeq >= b.StartSeq {
		t.Error("same-construction-order spans must have increasing StartSeq")
	}
}

func TestNilSafety(t *testing.T) {
	// Every method must be a no-op on nil receivers: this is what lets the
	// platform and runtime thread tracing through unconditionally.
	var tr *Trace
	var sp *Span
	if tr.Root() != nil || tr.Spans() != nil || tr.Len() != 0 || tr.Name() != "" {
		t.Error("nil trace accessors must return zero values")
	}
	if tr.Canonical(nil) != nil || tr.Structure(nil) != nil || tr.ChromeJSON(nil) != nil {
		t.Error("nil trace serializers must return nil")
	}
	if sp.Child(KindExec, "x") != nil || sp.Childf(KindExec, "x%d", 1) != nil {
		t.Error("nil span children must be nil")
	}
	sp.EndSpan()
	sp.SetBilled(1, 2)
	sp.SetAttr("a", "b")
	sp.Event("e")
	sp.Fail("failure", "boom")
	if sp.Attr("a") != "" || sp.Ended() {
		t.Error("nil span must hold nothing")
	}
}

func TestFailMarksSpan(t *testing.T) {
	clk := &fakeClock{}
	tr := New("q", clk.stamp)
	sp := tr.Root().Child(KindInvoke, "invoke:f")
	sp.Fail("timeout", "killed at limit")
	sp.EndSpan()
	tr.Root().EndSpan()
	if sp.Err != "killed at limit" || sp.Fault != "timeout" {
		t.Errorf("fail mark = (%q, %q)", sp.Err, sp.Fault)
	}
	out := string(tr.Canonical(nil))
	if !strings.Contains(out, "err(timeout)") {
		t.Errorf("canonical output misses fault mark:\n%s", out)
	}
}

func buildSample() *Trace {
	clk := &fakeClock{}
	tr := New("query", clk.stamp)
	root := tr.Root()
	clk.advance(time.Millisecond)
	inv := root.Child(KindInvoke, "invoke:prefix-master")
	up := inv.Child(KindUpload, "upload")
	clk.advance(time.Millisecond)
	up.EndSpan()
	ex := inv.Child(KindExec, "exec")
	ex.Event("op:conv1")
	clk.advance(2 * time.Millisecond)
	ex.EndSpan()
	inv.SetBilled(2, 2)
	inv.EndSpan()
	clk.advance(time.Millisecond)
	root.EndSpan()
	return tr
}

func TestCanonicalDeterministicAndRenamed(t *testing.T) {
	a := buildSample().Canonical(nil)
	b := buildSample().Canonical(nil)
	if string(a) != string(b) {
		t.Fatalf("canonical output not reproducible:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(string(a), "invoke invoke:prefix-master") {
		t.Fatalf("unexpected canonical output:\n%s", a)
	}
	ren := func(s string) string { return strings.ReplaceAll(s, "prefix-", "") }
	r := buildSample().Canonical(ren)
	if strings.Contains(string(r), "prefix-") {
		t.Fatalf("rename hook not applied:\n%s", r)
	}
	if !strings.Contains(string(r), "invoke invoke:master") {
		t.Fatalf("renamed output malformed:\n%s", r)
	}
}

func TestStructureDropsTimings(t *testing.T) {
	tr := buildSample()
	s := string(tr.Structure(nil))
	if strings.Contains(s, "start=") || strings.Contains(s, "dur=") || strings.Contains(s, "billed=") {
		t.Fatalf("structure output leaks timings:\n%s", s)
	}
	if !strings.Contains(s, "@ op:conv1") {
		t.Fatalf("structure output misses events:\n%s", s)
	}
}

func TestChromeJSONParses(t *testing.T) {
	tr := buildSample()
	raw := tr.ChromeJSON(nil)
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("ChromeJSON is not valid JSON: %v\n%s", err, raw)
	}
	// 4 spans (X) + 1 event (i).
	if len(events) != 5 {
		t.Fatalf("got %d trace events, want 5:\n%s", len(events), raw)
	}
	var xs, is int
	tidOfInvoke := -1.0
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			xs++
		case "i":
			is++
		}
		for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event misses %q: %v", k, ev)
			}
		}
		if ev["cat"] == "invoke" {
			tidOfInvoke = ev["tid"].(float64)
		}
	}
	if xs != 4 || is != 1 {
		t.Errorf("got %d X / %d i events, want 4/1", xs, is)
	}
	if tidOfInvoke != 1 {
		t.Errorf("invoke span tid = %v, want its own track 1", tidOfInvoke)
	}
}
