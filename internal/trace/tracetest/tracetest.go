// Package tracetest asserts structural invariants over traces produced by
// the deterministic simulator. Tests use it to pin properties like "no span
// outside its parent", "per-span billing sums to the platform's billed
// total", and "a hedge win implies the losing attempt was cancelled or
// failed" — instead of re-deriving absolute timings.
//
// Call the checkers only after the simulation has drained
// (simnet.Env.Run returned): spans are still being written while processes
// run.
package tracetest

import (
	"testing"

	"gillis/internal/trace"
)

// outlivesParentOK reports whether a span is allowed to end after its
// parent: abandoned attempts (deadline exceeded), hedge-race participants
// (the loser settles after the race is decided), and killed handlers
// (zombies drain past the platform's timeout kill) all legitimately outlive
// the caller that stopped waiting for them.
func outlivesParentOK(s *trace.Span) bool {
	return s.Attr("abandoned") != "" || s.Attr("hedge") != "" || s.Attr("killed") != ""
}

// CheckWellFormed asserts the structural invariants every trace must
// satisfy: parent links are consistent, every span starts within its
// parent, no span ends after its parent unless it carries an explicit
// abandonment mark, ended spans run forward in time, and events fall inside
// their span.
func CheckWellFormed(t testing.TB, tr *trace.Trace) {
	t.Helper()
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("tracetest: empty trace")
	}
	for _, s := range spans {
		if s.ID != 0 && (s.Parent < 0 || s.Parent >= len(spans) || s.Parent >= s.ID) {
			t.Errorf("span %d (%s): bad parent %d", s.ID, s.Name, s.Parent)
			continue
		}
		if !s.Ended() {
			t.Errorf("span %d (%s): never ended", s.ID, s.Name)
			continue
		}
		if s.End < s.Start {
			t.Errorf("span %d (%s): ends %v before start %v", s.ID, s.Name, s.End, s.Start)
		}
		for _, ev := range s.Events {
			if ev.At < s.Start || ev.At > s.End {
				t.Errorf("span %d (%s): event %q at %v outside [%v, %v]", s.ID, s.Name, ev.Name, ev.At, s.Start, s.End)
			}
		}
		if s.ID == 0 {
			continue
		}
		p := spans[s.Parent]
		if s.Start < p.Start {
			t.Errorf("span %d (%s): starts %v before parent %d (%s) start %v", s.ID, s.Name, s.Start, p.ID, p.Name, p.Start)
		}
		if s.End > p.End && !outlivesParentOK(s) {
			t.Errorf("span %d (%s): ends %v after parent %d (%s) end %v without an abandonment mark",
				s.ID, s.Name, s.End, p.ID, p.Name, p.End)
		}
	}
}

// BilledMsSum returns the total billed milliseconds attributed across the
// trace's spans. Because billing is attributed exactly once, to the
// invocation span that incurred it, this equals the platform's
// BilledMsTotal for a simulation that served only this trace's query.
func BilledMsSum(tr *trace.Trace) int64 {
	var sum int64
	for _, s := range tr.Spans() {
		sum += s.BilledMs
	}
	return sum
}

// CheckBilledTotal asserts that the trace's per-span billing sums exactly
// to want (typically platform.BilledMsTotal after the simulation drained).
func CheckBilledTotal(t testing.TB, tr *trace.Trace, want int64) {
	t.Helper()
	if got := BilledMsSum(tr); got != want {
		t.Errorf("tracetest: per-span billed-ms sum = %d, want %d", got, want)
	}
}

// subtreeClean reports whether no span in the subtree carries an
// abandonment mark; billing roll-ups are only exact for clean subtrees
// (work that settles after its caller stopped waiting is charged to the
// platform but not to the caller's roll-up).
func subtreeClean(spans []*trace.Span, id int) bool {
	s := spans[id]
	if outlivesParentOK(s) {
		return false
	}
	for _, ci := range s.Children {
		if !subtreeClean(spans, ci) {
			return false
		}
	}
	return true
}

// invokeChildrenTotal sums TotalBilledMs over the nearest invocation
// descendants of span id (descending through non-invocation spans).
func invokeChildrenTotal(spans []*trace.Span, id int) int64 {
	var sum int64
	for _, ci := range spans[id].Children {
		c := spans[ci]
		if c.Kind == trace.KindInvoke {
			sum += c.TotalBilledMs
			continue
		}
		sum += invokeChildrenTotal(spans, ci)
	}
	return sum
}

// CheckBilledAttribution asserts, for every invocation span whose subtree
// contains no abandoned work, that the platform's nested-billing roll-up
// matches the trace: TotalBilledMs == own BilledMs + the totals of its
// nested invocations.
func CheckBilledAttribution(t testing.TB, tr *trace.Trace) {
	t.Helper()
	spans := tr.Spans()
	for _, s := range spans {
		if s.Kind != trace.KindInvoke || !subtreeClean(spans, s.ID) {
			continue
		}
		if want := s.BilledMs + invokeChildrenTotal(spans, s.ID); s.TotalBilledMs != want {
			t.Errorf("span %d (%s): TotalBilledMs=%d, want own %d + children = %d",
				s.ID, s.Name, s.TotalBilledMs, s.BilledMs, want)
		}
	}
}

// faultKinds are the typed platform fault kinds a failed invocation span
// may carry.
var faultKinds = map[string]bool{"failure": true, "timeout": true, "evicted": true, "throttled": true}

// CheckFaultKinds asserts every failed invocation span carries a typed
// platform fault kind, and returns how many failed invocation spans the
// trace holds (so callers can assert the check was not vacuous).
func CheckFaultKinds(t testing.TB, tr *trace.Trace) int {
	t.Helper()
	failed := 0
	for _, s := range tr.Spans() {
		if s.Kind != trace.KindInvoke || s.Err == "" {
			continue
		}
		failed++
		if !faultKinds[s.Fault] {
			t.Errorf("span %d (%s): failed invocation with fault kind %q, want failure/timeout/evicted", s.ID, s.Name, s.Fault)
		}
	}
	return failed
}

// CheckHedges asserts the hedge-race invariants — a win implies exactly one
// backup marked as the winner and every other participant of that race lost
// or failed — and returns the hedge and hedge-win event counts.
func CheckHedges(t testing.TB, tr *trace.Trace) (hedges, wins int) {
	t.Helper()
	spans := tr.Spans()
	for _, s := range spans {
		var fired, won bool
		for _, ev := range s.Events {
			switch ev.Name {
			case "hedge":
				hedges++
				fired = true
			case "hedge-win":
				wins++
				won = true
			}
		}
		if won && !fired {
			t.Errorf("span %d (%s): hedge-win without a hedge event", s.ID, s.Name)
		}
		if !won {
			continue
		}
		var winners, settledLosers, invokes int
		for _, ci := range s.Children {
			c := spans[ci]
			if c.Kind != trace.KindInvoke {
				continue
			}
			invokes++
			switch {
			case c.Attr("hedge") == "won-backup":
				winners++
			case c.Attr("hedge") == "lost" || c.Err != "":
				settledLosers++
			}
		}
		if winners != 1 {
			t.Errorf("span %d (%s): hedge-win with %d winning backups, want 1", s.ID, s.Name, winners)
		}
		if invokes < 2 || settledLosers != invokes-winners {
			t.Errorf("span %d (%s): hedge-win with %d invocations, %d cancelled/failed losers", s.ID, s.Name, invokes, settledLosers)
		}
	}
	if wins > hedges {
		t.Errorf("tracetest: %d hedge wins exceed %d hedges", wins, hedges)
	}
	return hedges, wins
}

// ByKind returns the trace's spans of one kind, in creation order.
func ByKind(tr *trace.Trace, kind trace.Kind) []*trace.Span {
	var out []*trace.Span
	for _, s := range tr.Spans() {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// CountEvents returns how many events with the given name the trace holds.
func CountEvents(tr *trace.Trace, name string) int {
	n := 0
	for _, s := range tr.Spans() {
		for _, ev := range s.Events {
			if ev.Name == name {
				n++
			}
		}
	}
	return n
}
