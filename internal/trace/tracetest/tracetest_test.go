package tracetest

import (
	"testing"
	"time"

	"gillis/internal/trace"
)

// recordTB captures checker failures so the self-test can assert that the
// checkers actually reject malformed traces.
type recordTB struct {
	testing.TB
	errs int
}

func (r *recordTB) Errorf(format string, args ...any) { r.errs++ }
func (r *recordTB) Helper()                           {}

type clock struct {
	now time.Duration
	seq int64
}

func (c *clock) stamp() (time.Duration, int64) {
	c.seq++
	return c.now, c.seq
}

// goodTrace models one healthy invocation plus one failed, hedged one.
func goodTrace() (*trace.Trace, *clock) {
	c := &clock{}
	tr := trace.New("query", c.stamp)
	root := tr.Root()

	att := root.Child(trace.KindAttempt, "attempt")
	att.Event("hedge")
	p := att.Child(trace.KindInvoke, "invoke:w")
	p.SetAttr("hedge", "lost")
	p.SetBilled(4, 4)
	b := att.Child(trace.KindInvoke, "invoke:w")
	b.SetAttr("hedge", "won-backup")
	b.SetBilled(3, 3)
	c.now += 2 * time.Millisecond
	b.EndSpan()
	att.Event("hedge-win")
	att.EndSpan()
	c.now += time.Millisecond
	p.EndSpan() // loser settles after the race: allowed by the hedge mark

	f := root.Child(trace.KindInvoke, "invoke:bad")
	f.Fail("failure", "boom")
	f.SetBilled(2, 2)
	f.EndSpan()

	root.EndSpan()
	return tr, c
}

func TestCheckersAcceptGoodTrace(t *testing.T) {
	tr, _ := goodTrace()
	CheckWellFormed(t, tr)
	CheckBilledAttribution(t, tr)
	CheckBilledTotal(t, tr, 9)
	if failed := CheckFaultKinds(t, tr); failed != 1 {
		t.Errorf("failed invocation spans = %d, want 1", failed)
	}
	hedges, wins := CheckHedges(t, tr)
	if hedges != 1 || wins != 1 {
		t.Errorf("hedges=%d wins=%d, want 1/1", hedges, wins)
	}
	if n := len(ByKind(tr, trace.KindInvoke)); n != 3 {
		t.Errorf("invoke spans = %d, want 3", n)
	}
	if n := CountEvents(tr, "hedge"); n != 1 {
		t.Errorf("hedge events = %d, want 1", n)
	}
}

func TestWellFormedRejectsUnendedSpan(t *testing.T) {
	c := &clock{}
	tr := trace.New("q", c.stamp)
	tr.Root().Child(trace.KindExec, "open") // never ended
	tr.Root().EndSpan()
	rec := &recordTB{TB: t}
	CheckWellFormed(rec, tr)
	if rec.errs == 0 {
		t.Fatal("unended span must fail CheckWellFormed")
	}
}

func TestWellFormedRejectsUnmarkedOverhang(t *testing.T) {
	c := &clock{}
	tr := trace.New("q", c.stamp)
	child := tr.Root().Child(trace.KindExec, "late")
	tr.Root().EndSpan()
	c.now += time.Millisecond
	child.EndSpan() // outlives the root without an abandonment mark
	rec := &recordTB{TB: t}
	CheckWellFormed(rec, tr)
	if rec.errs == 0 {
		t.Fatal("unmarked overhang must fail CheckWellFormed")
	}
}

func TestBilledTotalMismatchRejected(t *testing.T) {
	tr, _ := goodTrace()
	rec := &recordTB{TB: t}
	CheckBilledTotal(rec, tr, 1234)
	if rec.errs == 0 {
		t.Fatal("wrong billed total must be rejected")
	}
}

func TestFaultKindRequired(t *testing.T) {
	c := &clock{}
	tr := trace.New("q", c.stamp)
	bad := tr.Root().Child(trace.KindInvoke, "invoke:f")
	bad.Fail("", "untyped failure") // a failed invocation must carry a kind
	bad.EndSpan()
	tr.Root().EndSpan()
	rec := &recordTB{TB: t}
	CheckFaultKinds(rec, tr)
	if rec.errs == 0 {
		t.Fatal("untyped failed invocation must be rejected")
	}
}

func TestHedgeWinWithoutWinnerRejected(t *testing.T) {
	c := &clock{}
	tr := trace.New("q", c.stamp)
	att := tr.Root().Child(trace.KindAttempt, "attempt")
	att.Event("hedge")
	att.Event("hedge-win")
	p := att.Child(trace.KindInvoke, "invoke:w") // no winner mark
	p.SetAttr("hedge", "lost")
	p.EndSpan()
	att.EndSpan()
	tr.Root().EndSpan()
	rec := &recordTB{TB: t}
	CheckHedges(rec, tr)
	if rec.errs == 0 {
		t.Fatal("hedge-win without a marked winning backup must be rejected")
	}
}

func TestBilledAttributionMismatchRejected(t *testing.T) {
	c := &clock{}
	tr := trace.New("q", c.stamp)
	outer := tr.Root().Child(trace.KindInvoke, "invoke:master")
	inner := outer.Child(trace.KindInvoke, "invoke:worker")
	inner.SetBilled(5, 5)
	inner.EndSpan()
	outer.SetBilled(10, 12) // should be 10 + 5
	outer.EndSpan()
	tr.Root().EndSpan()
	rec := &recordTB{TB: t}
	CheckBilledAttribution(rec, tr)
	if rec.errs == 0 {
		t.Fatal("inconsistent nested billing must be rejected")
	}
}
