// Package workload generates inference arrival processes for dynamic-load
// experiments: steady Poisson traffic and bursty traffic with periodic
// rate spikes — the regime §II-A of the Gillis paper motivates serverless
// serving with ("using serverless functions to cover transient load
// bursts").
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Poisson returns arrival times of a homogeneous Poisson process with the
// given rate (queries per second) over [0, dur). Arrival times are strictly
// increasing: an exponential gap that truncates to zero nanoseconds (possible
// at high rates, since ExpFloat64 can return values arbitrarily close to 0)
// is floored at 1 ns so downstream consumers — the gateway's FIFO admission
// in particular — never see coincident arrivals.
func Poisson(rng *rand.Rand, ratePerSec float64, dur time.Duration) ([]time.Duration, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("workload: rate must be positive, got %v", ratePerSec)
	}
	if dur <= 0 {
		return nil, fmt.Errorf("workload: duration must be positive, got %v", dur)
	}
	var out []time.Duration
	t := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() / ratePerSec * float64(time.Second))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		t += gap
		if t >= dur {
			return out, nil
		}
		out = append(out, t)
	}
}

// BurstSpec describes periodic load spikes on top of baseline traffic.
type BurstSpec struct {
	// BaseRate is the steady queries-per-second rate.
	BaseRate float64
	// BurstRate applies during burst windows.
	BurstRate float64
	// Period is the spacing between burst starts; BurstLen the window size.
	Period, BurstLen time.Duration
}

// Validate checks the spec.
func (s BurstSpec) Validate() error {
	if s.BaseRate <= 0 || s.BurstRate < s.BaseRate {
		return fmt.Errorf("workload: need 0 < base rate <= burst rate, got %v/%v", s.BaseRate, s.BurstRate)
	}
	if s.Period <= 0 || s.BurstLen <= 0 || s.BurstLen > s.Period {
		return fmt.Errorf("workload: need 0 < burst length <= period, got %v/%v", s.BurstLen, s.Period)
	}
	return nil
}

// Bursty returns arrival times over [0, dur) with the burst windows'
// elevated rate: a two-state modulated Poisson process.
func Bursty(rng *rand.Rand, spec BurstSpec, dur time.Duration) ([]time.Duration, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if dur <= 0 {
		return nil, fmt.Errorf("workload: duration must be positive, got %v", dur)
	}
	base, err := Poisson(rng, spec.BaseRate, dur)
	if err != nil {
		return nil, err
	}
	// Extra arrivals only inside burst windows.
	extraRate := spec.BurstRate - spec.BaseRate
	var extra []time.Duration
	if extraRate > 0 {
		all, err := Poisson(rng, extraRate, dur)
		if err != nil {
			return nil, err
		}
		for _, t := range all {
			if InBurst(spec, t) {
				extra = append(extra, t)
			}
		}
	}
	out := append(base, extra...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// The base and extra streams are independent, so merging can produce
	// ties. Nudge ties forward by 1 ns to keep arrivals strictly
	// increasing, dropping any arrival the nudge pushes past dur.
	dedup := out[:0]
	for _, t := range out {
		if n := len(dedup); n > 0 && t <= dedup[n-1] {
			t = dedup[n-1] + time.Nanosecond
		}
		if t >= dur {
			break
		}
		dedup = append(dedup, t)
	}
	return dedup, nil
}

// InBurst reports whether time t falls inside a burst window of the spec.
func InBurst(spec BurstSpec, t time.Duration) bool {
	return t%spec.Period < spec.BurstLen
}

// ModelArrival is one arrival of a multi-model trace: an arrival instant
// plus the catalog model the query requests.
type ModelArrival struct {
	At    time.Duration
	Model string
}

// ZipfSpec describes Zipf-skewed popularity over a model catalog: the
// model at rank k (0-based) receives share proportional to 1/(k+1)^S.
// Models are listed in rank order — Models[0] is the most popular.
type ZipfSpec struct {
	Models []string
	// S is the skew exponent; larger values concentrate more traffic on
	// the head of the catalog. S = 0 is uniform popularity.
	S float64
}

// Validate checks the spec.
func (s ZipfSpec) Validate() error {
	if len(s.Models) == 0 {
		return fmt.Errorf("workload: zipf catalog is empty")
	}
	if s.S < 0 {
		return fmt.Errorf("workload: zipf skew must be non-negative, got %v", s.S)
	}
	seen := make(map[string]bool, len(s.Models))
	for _, m := range s.Models {
		if m == "" {
			return fmt.Errorf("workload: zipf catalog has an empty model ID")
		}
		if seen[m] {
			return fmt.Errorf("workload: zipf catalog repeats model %q", m)
		}
		seen[m] = true
	}
	return nil
}

// Weights returns the normalized popularity share of each rank.
func (s ZipfSpec) Weights() []float64 {
	w := make([]float64, len(s.Models))
	var total float64
	for k := range s.Models {
		w[k] = 1 / math.Pow(float64(k+1), s.S)
		total += w[k]
	}
	for k := range w {
		w[k] /= total
	}
	return w
}

// MultiModel returns a Poisson arrival trace over [0, dur) with each
// arrival tagged by a model drawn from the Zipf popularity distribution.
// Arrival instants are strictly increasing (the Poisson generator's
// guarantee is preserved untouched); the model draws consume the same
// seeded RNG, so a fixed seed reproduces the trace bit-for-bit.
func MultiModel(rng *rand.Rand, spec ZipfSpec, ratePerSec float64, dur time.Duration) ([]ModelArrival, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	times, err := Poisson(rng, ratePerSec, dur)
	if err != nil {
		return nil, err
	}
	// Inverse-CDF sampling over the cumulative rank weights. rand.Zipf
	// needs s > 1; the explicit CDF handles any skew, uniform included.
	cum := make([]float64, len(spec.Models))
	var total float64
	for k := range spec.Models {
		total += 1 / math.Pow(float64(k+1), spec.S)
		cum[k] = total
	}
	out := make([]ModelArrival, len(times))
	for i, t := range times {
		u := rng.Float64() * total
		k := sort.SearchFloat64s(cum, u)
		if k >= len(cum) {
			k = len(cum) - 1
		}
		out[i] = ModelArrival{At: t, Model: spec.Models[k]}
	}
	return out, nil
}

// Times projects a multi-model trace to its bare arrival instants — the
// form gateway.Run consumes.
func Times(arrivals []ModelArrival) []time.Duration {
	ts := make([]time.Duration, len(arrivals))
	for i, a := range arrivals {
		ts[i] = a.At
	}
	return ts
}
