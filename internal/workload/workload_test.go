package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestPoissonRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	arrivals, err := Poisson(rng, 50, 100*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// ~5000 arrivals expected; Poisson sd ~71.
	if n := len(arrivals); math.Abs(float64(n)-5000) > 300 {
		t.Fatalf("got %d arrivals, want ~5000", n)
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			t.Fatal("arrivals must be sorted")
		}
	}
	if arrivals[len(arrivals)-1] >= 100*time.Second {
		t.Fatal("arrival beyond horizon")
	}
}

func TestPoissonErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Poisson(rng, 0, time.Second); err == nil {
		t.Fatal("expected rate error")
	}
	if _, err := Poisson(rng, 1, 0); err == nil {
		t.Fatal("expected duration error")
	}
}

func TestBurstyRates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	spec := BurstSpec{
		BaseRate:  10,
		BurstRate: 200,
		Period:    10 * time.Second,
		BurstLen:  2 * time.Second,
	}
	arrivals, err := Bursty(rng, spec, 100*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var inBurst, outBurst int
	for _, a := range arrivals {
		if InBurst(spec, a) {
			inBurst++
		} else {
			outBurst++
		}
	}
	// Burst windows: 20 s total at 200 qps ≈ 4000; steady: 80 s at 10 ≈ 800.
	if math.Abs(float64(inBurst)-4000) > 400 {
		t.Fatalf("burst arrivals %d, want ~4000", inBurst)
	}
	if math.Abs(float64(outBurst)-800) > 150 {
		t.Fatalf("steady arrivals %d, want ~800", outBurst)
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			t.Fatal("bursty arrivals must be sorted")
		}
	}
}

func TestBurstSpecValidate(t *testing.T) {
	bad := []BurstSpec{
		{BaseRate: 0, BurstRate: 10, Period: time.Second, BurstLen: time.Second},
		{BaseRate: 10, BurstRate: 5, Period: time.Second, BurstLen: time.Second},
		{BaseRate: 1, BurstRate: 2, Period: time.Second, BurstLen: 2 * time.Second},
		{BaseRate: 1, BurstRate: 2, Period: 0, BurstLen: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should be invalid", i)
		}
	}
	good := BurstSpec{BaseRate: 1, BurstRate: 10, Period: time.Minute, BurstLen: time.Second}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDeterministic(t *testing.T) {
	spec := BurstSpec{BaseRate: 5, BurstRate: 50, Period: 5 * time.Second, BurstLen: time.Second}
	a, _ := Bursty(rand.New(rand.NewSource(9)), spec, 30*time.Second)
	b, _ := Bursty(rand.New(rand.NewSource(9)), spec, 30*time.Second)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic arrivals")
		}
	}
}
