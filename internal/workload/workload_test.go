package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestPoissonRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	arrivals, err := Poisson(rng, 50, 100*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// ~5000 arrivals expected; Poisson sd ~71.
	if n := len(arrivals); math.Abs(float64(n)-5000) > 300 {
		t.Fatalf("got %d arrivals, want ~5000", n)
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			t.Fatal("arrivals must be sorted")
		}
	}
	if arrivals[len(arrivals)-1] >= 100*time.Second {
		t.Fatal("arrival beyond horizon")
	}
}

func TestPoissonErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Poisson(rng, 0, time.Second); err == nil {
		t.Fatal("expected rate error")
	}
	if _, err := Poisson(rng, 1, 0); err == nil {
		t.Fatal("expected duration error")
	}
}

func TestBurstyRates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	spec := BurstSpec{
		BaseRate:  10,
		BurstRate: 200,
		Period:    10 * time.Second,
		BurstLen:  2 * time.Second,
	}
	arrivals, err := Bursty(rng, spec, 100*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var inBurst, outBurst int
	for _, a := range arrivals {
		if InBurst(spec, a) {
			inBurst++
		} else {
			outBurst++
		}
	}
	// Burst windows: 20 s total at 200 qps ≈ 4000; steady: 80 s at 10 ≈ 800.
	if math.Abs(float64(inBurst)-4000) > 400 {
		t.Fatalf("burst arrivals %d, want ~4000", inBurst)
	}
	if math.Abs(float64(outBurst)-800) > 150 {
		t.Fatalf("steady arrivals %d, want ~800", outBurst)
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			t.Fatal("bursty arrivals must be sorted")
		}
	}
}

func TestBurstSpecValidate(t *testing.T) {
	bad := []BurstSpec{
		{BaseRate: 0, BurstRate: 10, Period: time.Second, BurstLen: time.Second},
		{BaseRate: 10, BurstRate: 5, Period: time.Second, BurstLen: time.Second},
		{BaseRate: 1, BurstRate: 2, Period: time.Second, BurstLen: 2 * time.Second},
		{BaseRate: 1, BurstRate: 2, Period: 0, BurstLen: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should be invalid", i)
		}
	}
	good := BurstSpec{BaseRate: 1, BurstRate: 10, Period: time.Minute, BurstLen: time.Second}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDeterministic(t *testing.T) {
	spec := BurstSpec{BaseRate: 5, BurstRate: 50, Period: 5 * time.Second, BurstLen: time.Second}
	a, _ := Bursty(rand.New(rand.NewSource(9)), spec, 30*time.Second)
	b, _ := Bursty(rand.New(rand.NewSource(9)), spec, 30*time.Second)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic arrivals")
		}
	}
}

// TestStrictMonotonicityProperty sweeps 100 seeds and asserts, for both
// generators, that arrivals are strictly increasing (no coincident or
// zero-gap arrivals — ExpFloat64 can truncate to a 0 ns gap, and the
// Bursty merge can tie), stay inside [0, dur), and land within a loose
// statistical envelope of the configured rate.
func TestStrictMonotonicityProperty(t *testing.T) {
	const dur = 10 * time.Second
	spec := BurstSpec{BaseRate: 100, BurstRate: 2000, Period: 2 * time.Second, BurstLen: 500 * time.Millisecond}
	// Expected counts: Poisson 3000 qps * 10 s; Bursty 100*10 steady plus
	// (2000-100)*2.5 s of burst windows.
	const poissonRate = 3000.0
	wantPoisson := poissonRate * dur.Seconds()
	wantBursty := spec.BaseRate*dur.Seconds() + (spec.BurstRate-spec.BaseRate)*2.5

	check := func(t *testing.T, name string, seed int64, arrivals []time.Duration, want float64) {
		t.Helper()
		for i, a := range arrivals {
			if a < 0 || a >= dur {
				t.Fatalf("%s seed %d: arrival %d = %v outside [0, %v)", name, seed, i, a, dur)
			}
			if i > 0 && a <= arrivals[i-1] {
				t.Fatalf("%s seed %d: arrivals not strictly increasing at %d: %v then %v",
					name, seed, i, arrivals[i-1], a)
			}
		}
		// 6 sigma on a Poisson count keeps 100 seeds flake-free.
		if got, tol := float64(len(arrivals)), 6*math.Sqrt(want); math.Abs(got-want) > tol {
			t.Fatalf("%s seed %d: %v arrivals, want %v±%v", name, seed, got, want, tol)
		}
	}

	for seed := int64(0); seed < 100; seed++ {
		p, err := Poisson(rand.New(rand.NewSource(seed)), poissonRate, dur)
		if err != nil {
			t.Fatal(err)
		}
		check(t, "Poisson", seed, p, wantPoisson)

		b, err := Bursty(rand.New(rand.NewSource(seed)), spec, dur)
		if err != nil {
			t.Fatal(err)
		}
		check(t, "Bursty", seed, b, wantBursty)
	}
}

func TestZipfSpecValidate(t *testing.T) {
	bad := []ZipfSpec{
		{},
		{Models: []string{"a", "b"}, S: -1},
		{Models: []string{"a", ""}},
		{Models: []string{"a", "a"}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should be invalid", i)
		}
	}
	if err := (ZipfSpec{Models: []string{"a", "b"}, S: 1.1}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestMultiModelDeterministic(t *testing.T) {
	spec := ZipfSpec{Models: []string{"a", "b", "c"}, S: 1}
	a, err := MultiModel(rand.New(rand.NewSource(7)), spec, 50, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := MultiModel(rand.New(rand.NewSource(7)), spec, 50, 20*time.Second)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic multi-model trace")
		}
	}
	ts := Times(a)
	if len(ts) != len(a) {
		t.Fatal("Times dropped arrivals")
	}
	for i, at := range ts {
		if at != a[i].At {
			t.Fatal("Times reordered arrivals")
		}
	}
}

// TestMultiModelZipfProperty sweeps 100 seeds: the tagged trace must keep
// the Poisson generator's strict arrival monotonicity, draw only catalog
// models, and land each rank's empirical popularity within 6 sigma of its
// configured Zipf share — which in particular pins the rank ordering of
// the head models against the tail.
func TestMultiModelZipfProperty(t *testing.T) {
	const dur = 10 * time.Second
	const rate = 400.0
	spec := ZipfSpec{Models: []string{"m0", "m1", "m2", "m3", "m4"}, S: 1}
	weights := spec.Weights()
	rank := make(map[string]int, len(spec.Models))
	for k, m := range spec.Models {
		rank[m] = k
	}
	for seed := int64(0); seed < 100; seed++ {
		arrivals, err := MultiModel(rand.New(rand.NewSource(seed)), spec, rate, dur)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, len(spec.Models))
		for i, a := range arrivals {
			if i > 0 && a.At <= arrivals[i-1].At {
				t.Fatalf("seed %d: arrivals not strictly increasing at %d", seed, i)
			}
			k, ok := rank[a.Model]
			if !ok {
				t.Fatalf("seed %d: arrival %d drew unknown model %q", seed, i, a.Model)
			}
			counts[k]++
		}
		n := float64(len(arrivals))
		for k, c := range counts {
			want := n * weights[k]
			// 6 sigma on a binomial count keeps 100 seeds flake-free.
			tol := 6 * math.Sqrt(n*weights[k]*(1-weights[k]))
			if math.Abs(float64(c)-want) > tol {
				t.Fatalf("seed %d: rank %d drew %d arrivals, want %.0f±%.0f (zipf share %.3f)",
					seed, k, c, want, tol, weights[k])
			}
		}
		// The head of the catalog must empirically dominate the tail.
		if counts[0] <= counts[len(counts)-1] {
			t.Fatalf("seed %d: rank 0 (%d draws) did not dominate rank %d (%d draws)",
				seed, counts[0], len(counts)-1, counts[len(counts)-1])
		}
	}
}
