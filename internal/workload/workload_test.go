package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestPoissonRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	arrivals, err := Poisson(rng, 50, 100*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// ~5000 arrivals expected; Poisson sd ~71.
	if n := len(arrivals); math.Abs(float64(n)-5000) > 300 {
		t.Fatalf("got %d arrivals, want ~5000", n)
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			t.Fatal("arrivals must be sorted")
		}
	}
	if arrivals[len(arrivals)-1] >= 100*time.Second {
		t.Fatal("arrival beyond horizon")
	}
}

func TestPoissonErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Poisson(rng, 0, time.Second); err == nil {
		t.Fatal("expected rate error")
	}
	if _, err := Poisson(rng, 1, 0); err == nil {
		t.Fatal("expected duration error")
	}
}

func TestBurstyRates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	spec := BurstSpec{
		BaseRate:  10,
		BurstRate: 200,
		Period:    10 * time.Second,
		BurstLen:  2 * time.Second,
	}
	arrivals, err := Bursty(rng, spec, 100*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var inBurst, outBurst int
	for _, a := range arrivals {
		if InBurst(spec, a) {
			inBurst++
		} else {
			outBurst++
		}
	}
	// Burst windows: 20 s total at 200 qps ≈ 4000; steady: 80 s at 10 ≈ 800.
	if math.Abs(float64(inBurst)-4000) > 400 {
		t.Fatalf("burst arrivals %d, want ~4000", inBurst)
	}
	if math.Abs(float64(outBurst)-800) > 150 {
		t.Fatalf("steady arrivals %d, want ~800", outBurst)
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			t.Fatal("bursty arrivals must be sorted")
		}
	}
}

func TestBurstSpecValidate(t *testing.T) {
	bad := []BurstSpec{
		{BaseRate: 0, BurstRate: 10, Period: time.Second, BurstLen: time.Second},
		{BaseRate: 10, BurstRate: 5, Period: time.Second, BurstLen: time.Second},
		{BaseRate: 1, BurstRate: 2, Period: time.Second, BurstLen: 2 * time.Second},
		{BaseRate: 1, BurstRate: 2, Period: 0, BurstLen: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should be invalid", i)
		}
	}
	good := BurstSpec{BaseRate: 1, BurstRate: 10, Period: time.Minute, BurstLen: time.Second}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDeterministic(t *testing.T) {
	spec := BurstSpec{BaseRate: 5, BurstRate: 50, Period: 5 * time.Second, BurstLen: time.Second}
	a, _ := Bursty(rand.New(rand.NewSource(9)), spec, 30*time.Second)
	b, _ := Bursty(rand.New(rand.NewSource(9)), spec, 30*time.Second)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic arrivals")
		}
	}
}

// TestStrictMonotonicityProperty sweeps 100 seeds and asserts, for both
// generators, that arrivals are strictly increasing (no coincident or
// zero-gap arrivals — ExpFloat64 can truncate to a 0 ns gap, and the
// Bursty merge can tie), stay inside [0, dur), and land within a loose
// statistical envelope of the configured rate.
func TestStrictMonotonicityProperty(t *testing.T) {
	const dur = 10 * time.Second
	spec := BurstSpec{BaseRate: 100, BurstRate: 2000, Period: 2 * time.Second, BurstLen: 500 * time.Millisecond}
	// Expected counts: Poisson 3000 qps * 10 s; Bursty 100*10 steady plus
	// (2000-100)*2.5 s of burst windows.
	const poissonRate = 3000.0
	wantPoisson := poissonRate * dur.Seconds()
	wantBursty := spec.BaseRate*dur.Seconds() + (spec.BurstRate-spec.BaseRate)*2.5

	check := func(t *testing.T, name string, seed int64, arrivals []time.Duration, want float64) {
		t.Helper()
		for i, a := range arrivals {
			if a < 0 || a >= dur {
				t.Fatalf("%s seed %d: arrival %d = %v outside [0, %v)", name, seed, i, a, dur)
			}
			if i > 0 && a <= arrivals[i-1] {
				t.Fatalf("%s seed %d: arrivals not strictly increasing at %d: %v then %v",
					name, seed, i, arrivals[i-1], a)
			}
		}
		// 6 sigma on a Poisson count keeps 100 seeds flake-free.
		if got, tol := float64(len(arrivals)), 6*math.Sqrt(want); math.Abs(got-want) > tol {
			t.Fatalf("%s seed %d: %v arrivals, want %v±%v", name, seed, got, want, tol)
		}
	}

	for seed := int64(0); seed < 100; seed++ {
		p, err := Poisson(rand.New(rand.NewSource(seed)), poissonRate, dur)
		if err != nil {
			t.Fatal(err)
		}
		check(t, "Poisson", seed, p, wantPoisson)

		b, err := Bursty(rand.New(rand.NewSource(seed)), spec, dur)
		if err != nil {
			t.Fatal(err)
		}
		check(t, "Bursty", seed, b, wantBursty)
	}
}
