#!/usr/bin/env bash
# Per-package test-coverage gate.
#
#   scripts/check_coverage.sh           compare against COVERAGE_BASELINE
#   scripts/check_coverage.sh -update   rewrite COVERAGE_BASELINE from a
#                                       fresh run (floors = measured - 0.5pt)
#
# COVERAGE_BASELINE holds one "import/path floor%" line per package with
# tests. The gate fails when any listed package measures below its floor,
# when a listed package disappears from the test output, or when a measured
# package has no baseline entry at all — so adding a package without
# recording its floor is a loud, self-explanatory failure rather than a
# silently ungated package.
set -u
cd "$(dirname "$0")/.."
baseline=COVERAGE_BASELINE

out="$(go test -count=1 -cover ./... 2>&1)"
status=$?
echo "$out"
if [ $status -ne 0 ]; then
	echo "coverage: test run failed" >&2
	exit $status
fi

# "ok <pkg> <time> coverage: <pct>% of statements" -> "<pkg> <pct>"
measured="$(echo "$out" | awk '$1 == "ok" {
	for (i = 1; i <= NF; i++) if ($i ~ /%$/) { sub(/%/, "", $i); print $2, $i }
}')"

if [ "${1:-}" = "-update" ]; then
	{
		echo "# Per-package coverage floors (percent), checked by scripts/check_coverage.sh."
		echo "# Regenerate with: ./scripts/check_coverage.sh -update"
		echo "$measured" | awk '{ printf "%s %.1f\n", $1, ($2 - 0.5 < 0 ? 0 : $2 - 0.5) }' | sort
	} > "$baseline"
	echo "wrote $baseline"
	exit 0
fi

if [ ! -f "$baseline" ]; then
	echo "coverage: missing $baseline (run ./scripts/check_coverage.sh -update)" >&2
	exit 1
fi

fail=0
while read -r pkg floor; do
	case "$pkg" in '' | '#'*) continue ;; esac
	pct="$(echo "$measured" | awk -v p="$pkg" '$1 == p { print $2 }')"
	if [ -z "$pct" ]; then
		echo "coverage: package $pkg in baseline but absent from test output" >&2
		fail=1
		continue
	fi
	below="$(awk -v a="$pct" -v b="$floor" 'BEGIN { print (a + 0 < b + 0) ? 1 : 0 }')"
	if [ "$below" = 1 ]; then
		echo "coverage: $pkg at $pct% fell below baseline floor $floor%" >&2
		fail=1
	fi
done < "$baseline"

# Every measured package must be gated: a package that reports coverage but
# has no baseline line fails with instructions instead of slipping through.
while read -r pkg pct; do
	[ -z "$pkg" ] && continue
	in_baseline="$(awk -v p="$pkg" '$1 == p { print 1 }' "$baseline")"
	if [ -z "$in_baseline" ]; then
		echo "coverage: package $pkg measures ${pct}% but has no floor in $baseline" >&2
		echo "coverage: add it by regenerating the baseline: ./scripts/check_coverage.sh -update" >&2
		fail=1
	fi
done <<EOF
$measured
EOF

if [ $fail -eq 0 ]; then
	echo "coverage: all packages at or above their baseline floors"
fi
exit $fail
